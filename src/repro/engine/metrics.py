"""Execution counters and throughput reporting.

``Metrics`` is the engine's hot-path counter bag and remains the stable
API for those totals; the richer observability layer lives in
:mod:`repro.obs`. This module stays a thin façade over that layer: the
:class:`repro.obs.registry.MetricsRegistry` subsumes every counter here
under a canonical name (see :meth:`Metrics.publish`), and extends them
with labelled per-cache/per-operator instruments the flat bag cannot
express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Metrics:
    """Counters accumulated by one engine run.

    ``throughput`` follows the paper's headline metric: updates processed
    per second of (virtual) time, inclusive of every overhead charged to
    the clock.
    """

    updates_processed: int = 0
    outputs_emitted: int = 0
    cache_probes: int = 0
    cache_hits: int = 0
    cache_creates: int = 0
    cache_maintenance_calls: int = 0
    profiled_tuples: int = 0
    reoptimizations: int = 0
    caches_added: int = 0
    caches_dropped: int = 0
    per_cache_hits: Dict[str, int] = field(default_factory=dict)

    def record_probe(self, cache_name: str, hit: bool) -> None:
        """Count one cache probe and, on a hit, credit the cache."""
        self.cache_probes += 1
        if hit:
            self.cache_hits += 1
            self.per_cache_hits[cache_name] = (
                self.per_cache_hits.get(cache_name, 0) + 1
            )

    @property
    def hit_rate(self) -> float:
        """Observed cache hit probability across all probes."""
        if self.cache_probes == 0:
            return 0.0
        return self.cache_hits / self.cache_probes

    def throughput(self, elapsed_seconds: float) -> float:
        """Updates processed per second over ``elapsed_seconds``."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.updates_processed / elapsed_seconds

    def snapshot(self) -> "Metrics":
        """A copy safe to keep while the engine keeps running."""
        copy = Metrics(**{
            k: v for k, v in self.__dict__.items() if k != "per_cache_hits"
        })
        copy.per_cache_hits = dict(self.per_cache_hits)
        return copy

    def publish(self, registry) -> None:
        """Publish these counters into a :class:`MetricsRegistry`.

        The registry's canonical names (``repro_updates_processed_total``
        etc.) are defined in :data:`repro.obs.registry.METRICS_FACADE_NAMES`;
        publishing is idempotent snapshotting, safe to repeat per export.
        """
        registry.ingest_metrics(self)
