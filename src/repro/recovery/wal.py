"""The write-ahead update log: append-only, length-prefixed JSONL.

One record per update, in global arrival order::

    <payload-length> <json-payload>\\n

The payload is the canonical form of one :class:`~repro.streams.events.
Update` — relation, rid, values, sign, and the deterministic global
``seq`` assigned by the window operators (or the fault plan's
renumbering). The explicit length prefix is what makes the log
crash-tolerant: a torn tail — a record cut mid-payload by the OS losing
un-fsynced pages — fails the length/framing check and the reader stops
at the last complete record instead of raising.

Appends are buffered and fsynced in batches of ``fsync_every`` records;
``durable_offset`` tracks the byte position guaranteed on stable
storage. Crash simulation (:meth:`WriteAheadLog.abandon`) truncates the
file back to that offset, modelling the worst-case legal data loss.
Every append charges ``wal_append`` to the engine's virtual clock and
every fsync charges ``wal_fsync``, so durability overhead shows up in
modeled throughput like any other cost.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.errors import ConfigError, RecoveryError
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row

_CORRUPT_KEY = "__corrupt__"


def _encode_value(value: object) -> object:
    # The unhashable CorruptValue sentinel is the one non-JSON value a
    # faulted stream can carry; round-trip it through a tagged dict.
    from repro.faults.plan import CorruptValue

    if isinstance(value, CorruptValue):
        return {_CORRUPT_KEY: True}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and value.get(_CORRUPT_KEY):
        from repro.faults.plan import CORRUPT

        return CORRUPT
    return value


def encode_update(update: Update) -> bytes:
    """One WAL record (length prefix + JSON payload + newline)."""
    payload = {
        "relation": update.relation,
        "rid": update.row.rid,
        "values": [_encode_value(v) for v in update.row.values],
        "sign": int(update.sign),
        "seq": update.seq,
    }
    data = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return b"%d %s\n" % (len(data), data)


def decode_payload(data: bytes) -> Update:
    """Rebuild the :class:`Update` one record's JSON payload describes."""
    payload = json.loads(data.decode("utf-8"))
    row = Row(
        payload["rid"], tuple(_decode_value(v) for v in payload["values"])
    )
    return Update(payload["relation"], row, Sign(payload["sign"]), payload["seq"])


def read_wal(path: str) -> Tuple[List[Update], bool, int]:
    """``(updates, torn, valid_bytes)`` for the log at ``path``.

    A missing file reads as an empty log. Any framing violation — a
    malformed length prefix, a payload shorter than declared, a missing
    terminator, unparsable JSON — marks the tail torn and ends the scan
    at the last complete record; recovery treats everything beyond it as
    lost and re-feeds it from the deterministic source. ``valid_bytes``
    is the offset of that last complete record's end, so a torn log can
    be repaired (truncated) before appends resume.
    """
    if not os.path.exists(path):
        return [], False, 0
    with open(path, "rb") as handle:
        data = handle.read()
    updates: List[Update] = []
    offset = 0
    while offset < len(data):
        space = data.find(b" ", offset)
        if space < 0:
            return updates, True, offset
        try:
            length = int(data[offset:space])
        except ValueError:
            return updates, True, offset
        start = space + 1
        end = start + length
        if end + 1 > len(data):
            return updates, True, offset
        if data[end:end + 1] != b"\n":
            return updates, True, offset
        try:
            updates.append(decode_payload(data[start:end]))
        except (ValueError, KeyError, UnicodeDecodeError):
            return updates, True, offset
        offset = end + 1
    return updates, False, offset


class WriteAheadLog:
    """An open, appendable WAL with fsync batching and cost charging."""

    def __init__(
        self,
        path: str,
        fsync_every: int = 64,
        ctx: Optional[object] = None,
    ):
        if fsync_every < 1:
            raise ConfigError(
                f"wal fsync_every must be >= 1, got {fsync_every}"
            )
        self.path = path
        self.fsync_every = fsync_every
        self._ctx = ctx
        self._file = open(path, "ab")
        self._since_fsync = 0
        # Pre-existing content was fsynced by the writer that produced it
        # (or already survived a crash, which proves the same thing).
        self.durable_offset = self._file.tell()
        self.appended = 0
        self.fsyncs = 0
        self.last_seq = 0
        self._closed = False

    def append(self, update: Update) -> None:
        """Journal one update; fsync when the batch fills."""
        if self._closed:
            raise RecoveryError("append to a closed WAL")
        self._file.write(encode_update(update))
        self.appended += 1
        self.last_seq = update.seq
        if self._ctx is not None:
            self._ctx.clock.charge(self._ctx.cost_model.wal_append)
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Flush and fsync; everything appended so far becomes durable."""
        if self._closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self.durable_offset = self._file.tell()
        if self._since_fsync:
            self.fsyncs += 1
            if self._ctx is not None:
                self._ctx.clock.charge(self._ctx.cost_model.wal_fsync)
        self._since_fsync = 0

    def close(self) -> None:
        """Graceful shutdown: make the whole log durable, then close."""
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True

    def abandon(self) -> None:
        """Crash simulation: lose everything past ``durable_offset``.

        Closes the file and truncates it back to the last fsync, which
        is the worst data loss a real kill can inflict on this format.
        """
        if self._closed:
            return
        self._file.close()
        self._closed = True
        with open(self.path, "ab") as handle:
            handle.truncate(self.durable_offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({self.path!r}, appended={self.appended}, "
            f"durable={self.durable_offset})"
        )
