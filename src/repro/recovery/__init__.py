"""Durability for continuous queries: WAL, checkpoints, recovery.

The paper's engine assumes an always-up process; this package adds the
production-side durability story on top of the deterministic core:

* :mod:`repro.recovery.wal` — an append-only, length-prefixed JSONL
  write-ahead log of canonical update events with fsync batching;
* :mod:`repro.recovery.snapshot` — a versioned, checksummed snapshot
  container and the on-disk checkpoint store;
* :mod:`repro.recovery.manager` — the :class:`Recorder` that journals a
  run and the :class:`RecoveryManager` that restores the latest valid
  checkpoint and replays the WAL suffix, byte-identically.

Because stream generation, fault rewriting, and the engine itself are
fully deterministic, recovery composes three sources: checkpoint state
(everything ≤ the checkpoint seq), WAL replay (the durable suffix), and
re-fed source updates (everything past the WAL tail).
"""

from repro.recovery.manager import (
    CACHE_MODES,
    Recorder,
    RecoveredState,
    RecoveryConfig,
    RecoveryManager,
)
from repro.recovery.snapshot import CheckpointStore, decode_snapshot, encode_snapshot
from repro.recovery.wal import WriteAheadLog, read_wal

__all__ = [
    "CACHE_MODES",
    "CheckpointStore",
    "Recorder",
    "RecoveredState",
    "RecoveryConfig",
    "RecoveryManager",
    "WriteAheadLog",
    "decode_snapshot",
    "encode_snapshot",
    "read_wal",
]
