"""Checkpointing a live run, and restoring one after a crash.

The :class:`Recorder` rides along any run loop: every update is
journaled to the WAL *before* processing, and at safe points (an update
boundary, or a micro-batch flush boundary) a checkpoint captures the
engine at the seq of the last processed update. The
:class:`RecoveryManager` inverts that: load the newest valid checkpoint
(falling back past corrupt/partial files), replay the durable WAL suffix
through the engine, and hand back the seq the caller must resume the
deterministic source from.

Two cache modes trade checkpoint size against restore work:

* ``"snapshot"`` pickles the whole engine — caches, profiler,
  re-optimizer, clock, resilience — so restore is byte-for-byte the
  crashed process's state.
* ``"rebuild"`` persists only what recomputation cannot reproduce: the
  windowed relations, virtual-clock reading, metrics, and the ingress
  guard's pairing state. Caches are subresults (Definition 3.1 promises
  present-key equality, never completeness), so a fresh engine simply
  re-converges its profiler/re-optimizer and repopulates caches through
  the normal miss path. Emitted deltas are unaffected either way — the
  same cache/order independence the micro-batching equivalence tests
  already pin down — which is why both modes satisfy the byte-identity
  property. (Load shedding is the one exception: it triggers on virtual
  time, which rebuild mode does not preserve beyond the restored
  reading, so shedding runs are excluded from byte-identity just as they
  are for batching.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, RecoveryError
from repro.obs.decisions import CHECKPOINT, RECOVER
from repro.recovery.snapshot import CheckpointStore
from repro.recovery.wal import WriteAheadLog, read_wal
from repro.streams.events import OutputDelta, Update
from repro.streams.tuples import Row

CACHE_MODES = ("snapshot", "rebuild")

WAL_NAME = "wal.jsonl"
CHECKPOINT_SUBDIR = "checkpoints"


@dataclass(frozen=True)
class RecoveryConfig:
    """Where and how often to persist one run's durable state."""

    wal_dir: str
    checkpoint_interval: int = 1000   # processed updates between snapshots
    fsync_every: int = 64             # WAL records per fsync batch
    cache_mode: str = "snapshot"      # or "rebuild" (drop-and-rebuild caches)
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if not self.wal_dir:
            raise ConfigError("recovery wal_dir must be a non-empty path")
        if self.checkpoint_interval < 1:
            raise ConfigError(
                "recovery checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.fsync_every < 1:
            raise ConfigError(
                f"recovery fsync_every must be >= 1, got {self.fsync_every}"
            )
        if self.cache_mode not in CACHE_MODES:
            raise ConfigError(
                f"recovery cache_mode must be one of {CACHE_MODES}, got "
                f"{self.cache_mode!r}"
            )
        if self.keep_checkpoints < 1:
            raise ConfigError(
                "recovery keep_checkpoints must be >= 1, got "
                f"{self.keep_checkpoints}"
            )

    @property
    def wal_path(self) -> str:
        return os.path.join(self.wal_dir, WAL_NAME)

    @property
    def checkpoint_dir(self) -> str:
        return os.path.join(self.wal_dir, CHECKPOINT_SUBDIR)

    def for_shard(self, shard: int) -> "RecoveryConfig":
        """The per-shard sub-config (own WAL + checkpoints directory)."""
        from dataclasses import replace

        return replace(
            self, wal_dir=os.path.join(self.wal_dir, f"shard-{shard}")
        )


def _relations_of(plan) -> Dict[str, object]:
    executor = getattr(plan, "executor", plan)
    return executor.relations


def _window_rows(plan) -> Dict[str, List[Tuple[int, tuple]]]:
    return {
        name: sorted(
            ((row.rid, row.values) for row in relation.rows()),
            key=lambda pair: pair[0],
        )
        for name, relation in _relations_of(plan).items()
    }


def _guard_of(plan):
    resilience = getattr(plan, "resilience", None)
    return getattr(resilience, "guard", None) if resilience else None


def build_payload(
    plan,
    cache_mode: str,
    last_seq: int,
    runner_state: Optional[dict] = None,
) -> dict:
    """The checkpoint payload capturing ``plan`` just after ``last_seq``."""
    payload: dict = {
        "seq": last_seq,
        "cache_mode": cache_mode,
        "runner_state": runner_state,
    }
    if cache_mode == "snapshot":
        payload["engine"] = plan
        return payload
    payload["windows"] = _window_rows(plan)
    payload["clock_us"] = plan.ctx.clock.now_us
    payload["metrics"] = plan.ctx.metrics.snapshot()
    guard = _guard_of(plan)
    if guard is not None:
        payload["guard"] = {
            "pending_extra_deletes": dict(guard._pending_extra_deletes),
            "by_reason": dict(guard.by_reason),
            "entries": guard.dead_letters.entries(),
            "total": guard.dead_letters.total,
            "dropped": guard.dead_letters.dropped,
        }
    return payload


class Recorder:
    """Journals one run: WAL every update, checkpoint at safe points."""

    def __init__(self, plan, config: RecoveryConfig):
        self.plan = plan
        self.config = config
        os.makedirs(config.wal_dir, exist_ok=True)
        self.wal = WriteAheadLog(
            config.wal_path, fsync_every=config.fsync_every, ctx=plan.ctx
        )
        self.store = CheckpointStore(config.checkpoint_dir)
        self._since_checkpoint = 0
        self.checkpoints = 0
        self.last_checkpoint_seq = 0
        self._crashed = False

    def log(self, update: Update) -> None:
        """Write-ahead: journal before the engine sees the update."""
        self.wal.append(update)

    def mark_processed(self, count: int = 1) -> None:
        self._since_checkpoint += count

    def due(self) -> bool:
        """True when the next safe point should checkpoint."""
        return self._since_checkpoint >= self.config.checkpoint_interval

    def maybe_checkpoint(
        self, last_seq: int, runner_state: Optional[dict] = None
    ) -> bool:
        """Checkpoint if due. Call only at safe points — an update (or
        flushed-batch) boundary, where the engine state reflects exactly
        the updates with seq <= ``last_seq``."""
        if not self.due():
            return False
        self.checkpoint(last_seq, runner_state)
        return True

    def checkpoint(
        self, last_seq: int, runner_state: Optional[dict] = None
    ) -> str:
        """Force a checkpoint at ``last_seq``; returns its path."""
        # WAL first: a checkpoint must never be newer than the durable log.
        self.wal.sync()
        ctx = self.plan.ctx
        rows = sum(len(rows) for rows in _window_rows(self.plan).values())
        ctx.clock.charge(
            ctx.cost_model.checkpoint_base + ctx.cost_model.checkpoint_row * rows
        )
        payload = build_payload(
            self.plan, self.config.cache_mode, last_seq, runner_state
        )
        path = self.store.write(last_seq, payload)
        self.store.prune(self.config.keep_checkpoints)
        self.checkpoints += 1
        self.last_checkpoint_seq = last_seq
        self._since_checkpoint = 0
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            CHECKPOINT,
            "engine",
            reason=(
                f"seq={last_seq} mode={self.config.cache_mode} rows={rows}"
            ),
        )
        return path

    def close(self) -> None:
        """Graceful end of run: the whole WAL becomes durable."""
        self.wal.close()

    def crash(self) -> None:
        """Simulate a kill: lose every record past the last fsync."""
        self._crashed = True
        self.wal.abandon()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Recorder(checkpoints={self.checkpoints}, "
            f"last={self.last_checkpoint_seq}, wal={self.wal.appended})"
        )


@dataclass
class RecoveredState:
    """What :meth:`RecoveryManager.restore` hands back."""

    plan: object
    checkpoint_seq: int            # -1 when no checkpoint survived
    last_seq: int                  # resume the source strictly after this
    replayed: List[Tuple[int, List[OutputDelta]]]  # per replayed update
    wal_records: int               # complete records found in the log
    wal_torn: bool                 # the log ended in a torn record
    skipped_checkpoints: int       # corrupt/partial snapshots skipped
    runner_state: Optional[dict]   # caller state stored at the checkpoint


class RecoveryManager:
    """Restores a journaled run: checkpoint + WAL replay."""

    def __init__(self, config: RecoveryConfig, builder: Callable[[], object]):
        self.config = config
        self.builder = builder
        self.store = CheckpointStore(config.checkpoint_dir)

    def restore(self) -> RecoveredState:
        """Load the newest valid checkpoint and replay the WAL suffix.

        Falls back past corrupt/partial checkpoints (and a torn WAL
        tail); with nothing durable at all it returns a fresh engine at
        seq 0, which is simply a full deterministic re-run.
        """
        seq0, payload, skipped = self.store.latest_valid()
        if payload is None:
            seq0 = -1  # seqs start at 0; nothing durable covers any of them
        plan = self._restore_plan(payload)
        runner_state = payload.get("runner_state") if payload else None
        updates, torn, valid_bytes = read_wal(self.config.wal_path)
        if torn:
            # Repair: drop the torn tail so appends can safely resume.
            with open(self.config.wal_path, "ab") as handle:
                handle.truncate(valid_bytes)
        replayed: List[Tuple[int, List[OutputDelta]]] = []
        last = seq0
        for update in updates:
            if update.seq <= seq0:
                continue
            if update.seq <= last:
                raise RecoveryError(
                    f"WAL is not seq-ordered: {update.seq} after {last}"
                )
            replayed.append((update.seq, plan.process(update)))
            last = update.seq
        ctx = plan.ctx
        ctx.obs.decisions.record(
            ctx.clock.now_us,
            RECOVER,
            "engine",
            reason=(
                f"checkpoint={seq0} replayed={len(replayed)} "
                f"skipped={skipped} torn={'yes' if torn else 'no'}"
            ),
        )
        return RecoveredState(
            plan=plan,
            checkpoint_seq=seq0,
            last_seq=last,
            replayed=replayed,
            wal_records=len(updates),
            wal_torn=torn,
            skipped_checkpoints=skipped,
            runner_state=runner_state,
        )

    def _restore_plan(self, payload: Optional[dict]):
        if payload is None:
            return self.builder()
        if payload["cache_mode"] == "snapshot":
            return payload["engine"]
        return self._rebuild(payload)

    def _rebuild(self, payload: dict):
        """Fresh engine + persisted windows; caches re-converge."""
        plan = self.builder()
        relations = _relations_of(plan)
        for name, rows in payload["windows"].items():
            relation = relations.get(name)
            if relation is None:
                raise RecoveryError(
                    f"checkpoint has window for unknown relation {name!r}"
                )
            for rid, values in rows:
                # Relation.insert is idempotent by rid and charges no
                # virtual time; the clock is restored wholesale below.
                relation.insert(Row(rid, tuple(values)))
        plan.ctx.clock._now_us = payload["clock_us"]
        plan.ctx.metrics.__dict__.update(payload["metrics"].__dict__)
        guard = _guard_of(plan)
        saved = payload.get("guard")
        if guard is not None and saved is not None:
            guard._pending_extra_deletes = dict(saved["pending_extra_deletes"])
            guard.by_reason = dict(saved["by_reason"])
            for entry in saved["entries"]:
                guard.dead_letters._entries.append(entry)
            guard.dead_letters.total = saved["total"]
            guard.dead_letters.dropped = saved["dropped"]
        # Align the periodic memory check with the restored counters so
        # its cadence resumes where the crashed run left off.
        if hasattr(plan, "_updates_at_memory_check"):
            plan._updates_at_memory_check = plan.ctx.metrics.updates_processed
        return plan
