"""Versioned, checksummed checkpoint snapshots and their on-disk store.

A snapshot is a single file::

    ACKPT <version> <payload-length> <sha256-hex>\\n
    <pickled payload bytes>

The header is ASCII so a truncated or garbled file fails fast; the
SHA-256 digest covers the whole payload, so a checkpoint cut mid-write
by a crash (or corrupted on disk) is detected and *skipped*, never
loaded. The :class:`CheckpointStore` names files by the update seq they
capture and always falls back past invalid files to the newest valid
one — the recovery guarantee the torn-write tests pin down.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from typing import List, Optional, Tuple

from repro.errors import RecoveryError

MAGIC = b"ACKPT"
VERSION = 1

_NAME = re.compile(r"^ckpt-(\d{12})\.snap$")


def encode_snapshot(payload: object) -> bytes:
    """Serialize one checkpoint payload into the container format."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(data).hexdigest()
    header = b"%s %d %d %s\n" % (
        MAGIC, VERSION, len(data), digest.encode("ascii"),
    )
    return header + data


def decode_snapshot(data: bytes) -> object:
    """Validate and deserialize one snapshot; RecoveryError if invalid."""
    newline = data.find(b"\n")
    if newline < 0:
        raise RecoveryError("snapshot has no header line")
    parts = data[:newline].split(b" ")
    if len(parts) != 4 or parts[0] != MAGIC:
        raise RecoveryError("snapshot header is malformed")
    try:
        version = int(parts[1])
        length = int(parts[2])
    except ValueError:
        raise RecoveryError("snapshot header is malformed") from None
    if version != VERSION:
        raise RecoveryError(
            f"snapshot version {version} is not supported (want {VERSION})"
        )
    payload = data[newline + 1:]
    if len(payload) != length:
        raise RecoveryError(
            f"snapshot payload is {len(payload)} bytes, header says {length}"
        )
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    if digest != parts[3]:
        raise RecoveryError("snapshot checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise RecoveryError(f"snapshot payload unpicklable: {error}") from None


class CheckpointStore:
    """Checkpoint files in one directory, named by captured update seq."""

    def __init__(self, directory: str):
        self.directory = directory

    def path_for(self, seq: int) -> str:
        return os.path.join(self.directory, f"ckpt-{seq:012d}.snap")

    def write(self, seq: int, payload: object) -> str:
        """Persist one checkpoint; returns its path.

        Written straight to the final name (no tempfile + rename) so a
        kill mid-write leaves exactly the partial file a real crash
        would — which recovery must, and does, skip via the checksum.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(seq)
        with open(path, "wb") as handle:
            handle.write(encode_snapshot(payload))
            handle.flush()
            os.fsync(handle.fileno())
        return path

    def seqs(self) -> List[int]:
        """Captured seqs of every checkpoint file present, ascending."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _NAME.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def load(self, seq: int) -> object:
        """Decode the checkpoint for ``seq`` (RecoveryError if invalid)."""
        path = self.path_for(seq)
        try:
            with open(path, "rb") as handle:
                return decode_snapshot(handle.read())
        except OSError as error:
            raise RecoveryError(f"cannot read {path}: {error}") from None

    def latest_valid(self) -> Tuple[int, Optional[object], int]:
        """``(seq, payload, skipped)`` of the newest loadable checkpoint.

        Scans newest-first, skipping every corrupt/partial file; returns
        ``(0, None, skipped)`` when no checkpoint survives.
        """
        skipped = 0
        for seq in reversed(self.seqs()):
            try:
                return seq, self.load(seq), skipped
            except RecoveryError:
                skipped += 1
        return 0, None, skipped

    def prune(self, keep: int) -> None:
        """Drop all but the newest ``keep`` checkpoint files."""
        if keep < 1:
            return
        for seq in self.seqs()[:-keep]:
            try:
                os.remove(self.path_for(seq))
            except OSError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointStore({self.directory!r}, seqs={self.seqs()})"
