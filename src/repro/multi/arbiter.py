"""Global memory arbitration across all registered queries (Section 5).

The paper allocates one query's memory greedily by net benefit per byte.
With N tenants on one engine the same policy runs over one global page
ledger: every *physical store* is charged once (a store several queries
share via the inter-query directory costs its pages once, which is the
economic argument for sharing), and per-tenant ``min``/``max``
reservations keep one hot query from starving the rest — a tenant's
unmet minimum stays reserved against everyone else's admissions, and a
tenant can never hold more than its own maximum.

All orderings are deterministic: demands by ``(-priority,
candidate_id)``, re-charging a shared store on owner departure to the
lexicographically smallest surviving user.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from repro.core.candidates import CandidateCache
from repro.core.memory import (
    AllocationResult,
    CacheDemand,
    MemoryAllocator,
    PAGE_BYTES,
)
from repro.errors import ConfigError

TokenOf = Callable[[CandidateCache], Tuple]


@dataclass(frozen=True)
class TenantQuota:
    """Per-query reservation bounds, in bytes.

    ``min_bytes`` pages are held back from other tenants until this query
    claims them; ``max_bytes`` caps what this query may hold (None =
    bounded only by the global budget).
    """

    min_bytes: int = 0
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_bytes < 0:
            raise ConfigError("tenant min_bytes must be >= 0")
        if self.max_bytes is not None and self.max_bytes < self.min_bytes:
            raise ConfigError(
                "tenant max_bytes must be >= min_bytes "
                f"({self.max_bytes} < {self.min_bytes})"
            )

    @property
    def min_pages(self) -> int:
        return math.ceil(self.min_bytes / PAGE_BYTES)

    @property
    def max_pages(self) -> Optional[int]:
        if self.max_bytes is None:
            return None
        return self.max_bytes // PAGE_BYTES


@dataclass
class _Grant:
    """One charged store: its pages, who uses it, who pays for it."""

    pages: int
    charged_to: str
    users: Set[str] = field(default_factory=set)


class GlobalMemoryArbiter:
    """One page ledger arbitrating the budget across all tenants."""

    def __init__(self, budget_bytes: Optional[int] = None):
        self.budget_bytes = budget_bytes
        self.quotas: Dict[str, TenantQuota] = {}
        self._grants: Dict[Tuple, _Grant] = {}

    @property
    def budget_pages(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return self.budget_bytes // PAGE_BYTES

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def register_tenant(
        self, query_id: str, quota: Optional[TenantQuota] = None
    ) -> None:
        if query_id in self.quotas:
            raise ConfigError(f"tenant {query_id!r} already registered")
        quota = quota or TenantQuota()
        budget = self.budget_pages
        if budget is not None:
            reserved = sum(q.min_pages for q in self.quotas.values())
            if reserved + quota.min_pages > budget:
                raise ConfigError(
                    "tenant minimum reservations exceed the global budget: "
                    f"{reserved + quota.min_pages} pages reserved, "
                    f"{budget} available"
                )
        self.quotas[query_id] = quota

    def unregister_tenant(self, query_id: str) -> None:
        self.release(query_id)
        self.quotas.pop(query_id, None)

    # ------------------------------------------------------------------
    # ledger queries
    # ------------------------------------------------------------------
    def pages_in_use(self) -> int:
        return sum(grant.pages for grant in self._grants.values())

    def pages_held(self, query_id: str) -> int:
        """Pages charged to (not merely used by) ``query_id``."""
        return sum(
            grant.pages
            for grant in self._grants.values()
            if grant.charged_to == query_id
        )

    def snapshot(self) -> Dict[str, object]:
        held = {qid: self.pages_held(qid) for qid in sorted(self.quotas)}
        return {
            "budget_pages": self.budget_pages,
            "pages_in_use": self.pages_in_use(),
            "pages_held": held,
            "grants": len(self._grants),
        }

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(
        self,
        query_id: str,
        demands: Sequence[CacheDemand],
        token_of: TokenOf,
    ) -> AllocationResult:
        """One tenant's admission round against the global ledger.

        The caller's previous claims are released first (re-optimization
        replaces a tenant's plan wholesale), then demands are admitted in
        the same deterministic ``(-priority, candidate_id)`` order as the
        single-query allocator. A demand whose store is already charged to
        another tenant admits at zero incremental pages; a fresh store
        must fit under the budget minus other tenants' holdings *and*
        their unmet minimum reservations, and under the caller's own
        maximum.
        """
        if query_id not in self.quotas:
            raise ConfigError(f"unknown tenant {query_id!r}")
        self.release(query_id)
        result = AllocationResult()
        budget = self.budget_pages
        ordered = sorted(
            demands,
            key=lambda d: (-d.priority, d.candidate.candidate_id),
        )
        for demand in ordered:
            token = token_of(demand.candidate)
            grant = self._grants.get(token)
            if grant is not None:
                # Sharing is free: the store exists whether or not this
                # tenant joins it.
                grant.users.add(query_id)
                result.admitted.append(demand.candidate)
                result.audit.append(("admit", demand))
                continue
            pages = demand.expected_pages
            if budget is not None and not self._fits(query_id, pages, budget):
                result.rejected.append(demand.candidate)
                result.audit.append(("reject", demand))
                continue
            self._grants[token] = _Grant(
                pages=pages, charged_to=query_id, users={query_id}
            )
            result.admitted.append(demand.candidate)
            result.pages_used += pages
            result.audit.append(("admit", demand))
        return result

    def _fits(self, query_id: str, pages: int, budget: int) -> bool:
        held = self.pages_held(query_id)
        quota = self.quotas[query_id]
        if quota.max_pages is not None and held + pages > quota.max_pages:
            return False
        # Other tenants' unmet minima stay reserved against this claim.
        reserved = sum(
            max(0, q.min_pages - self.pages_held(other))
            for other, q in self.quotas.items()
            if other != query_id
        )
        return self.pages_in_use() + pages + reserved <= budget

    # ------------------------------------------------------------------
    # release / eviction
    # ------------------------------------------------------------------
    def release(self, query_id: str) -> None:
        """Drop all of ``query_id``'s claims; re-charge surviving shares.

        A shared store whose payer departs is re-charged to the
        lexicographically smallest surviving user, so the ledger keeps
        covering every live store and the choice is reproducible.
        """
        for token in list(self._grants):
            grant = self._grants[token]
            grant.users.discard(query_id)
            if not grant.users:
                del self._grants[token]
            elif grant.charged_to == query_id:
                grant.charged_to = min(grant.users)

    def forget_token(self, token: Tuple) -> None:
        """Drop the grant for an evicted store (all users unwired it)."""
        self._grants.pop(token, None)


class TenantAllocator(MemoryAllocator):
    """Per-query allocator facade over the global arbiter.

    Injected into each tenant's re-optimizer so its Section 5 admission
    round routes through the shared ledger unchanged. ``over_budget``
    always answers False: runtime enforcement is global (the multi-query
    engine picks victims across all tenants), never per query.
    """

    def __init__(
        self,
        arbiter: GlobalMemoryArbiter,
        query_id: str,
        token_of: TokenOf,
    ):
        super().__init__(arbiter.budget_bytes)
        self.arbiter = arbiter
        self.query_id = query_id
        self.token_of = token_of

    def admit(self, demands: Sequence[CacheDemand]) -> AllocationResult:
        return self.arbiter.admit(self.query_id, demands, self.token_of)

    def over_budget(self, used_bytes: int) -> bool:
        return False
