"""The multi-query engine: N adaptive queries over shared streams.

One :class:`MultiQueryEngine` hosts N registered continuous queries.
Each update stream is ingested once into a shared window state
(:class:`StreamHub`); every query that joins the stream references the
same :class:`~repro.relations.relation.Relation`. Per-query execution,
profiling, ordering, and cache selection stay exactly the paper's
single-query machinery — the engine injects a
:class:`~repro.multi.directory.SharedCacheWiring` (inter-query shared
stores) and a :class:`~repro.multi.arbiter.TenantAllocator` (one global
page ledger) into each query's re-optimizer.

Correctness of sharing one update round across queries: for an update to
relation R, a cache *probed* during the round lives in some query's ∆R
pipeline and its segment excludes R, while a cache *maintained* during
the round has R in its segment (its taps fire in segment-member
pipelines). No cache is both probed and maintained within one round, so
probe results always equal recompute-from-windows regardless of the
per-query processing order — and the window mutation itself is applied
exactly once, after every interested query has run the update through
its pipelines (``apply_window=False``).

Caches never change emitted results (Section 3.2), so each query's
output deltas are byte-identical to the same query running alone on its
own engine — shared stores, shared windows, and global memory pressure
only move modeled cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core import cost_model
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.candidates import CandidateCache, inter_query_token
from repro.errors import ConfigError, PlanError
from repro.multi.arbiter import (
    GlobalMemoryArbiter,
    TenantAllocator,
    TenantQuota,
)
from repro.multi.directory import InterQueryCacheDirectory, SharedCacheWiring
from repro.obs import DecisionLog, Observability
from repro.obs.export import registries_to_prometheus
from repro.operators.base import ExecContext
from repro.relations.relation import Relation
from repro.streams.events import OutputDelta, Sign, Update


class StreamHub:
    """The shared window-state manager: one Relation per update stream.

    Windows are *kept warm* when the last interested query unregisters:
    updates keep flowing into them, so a later re-registration (or a new
    query over the same stream) starts from the exact window contents an
    always-on engine would hold. Releasing window bytes is therefore an
    explicit :meth:`drop_idle` call, never a side effect of unregister.
    """

    def __init__(self) -> None:
        self.relations: Dict[str, Relation] = {}
        self._interest: Dict[str, set] = {}

    def bind(self, query_id: str, graph) -> Dict[str, Relation]:
        """Register interest in every stream of ``graph``; create missing
        relations (indexes are added by the executor, backfilled)."""
        bound: Dict[str, Relation] = {}
        for name, schema in graph.schemas.items():
            relation = self.relations.get(name)
            if relation is None:
                relation = Relation(schema)
                self.relations[name] = relation
            elif tuple(relation.schema.attributes) != tuple(schema.attributes):
                raise PlanError(
                    f"stream {name!r} already hosted with schema "
                    f"{tuple(relation.schema.attributes)}; query "
                    f"{query_id!r} expects {tuple(schema.attributes)}"
                )
            self._interest.setdefault(name, set()).add(query_id)
            bound[name] = relation
        return bound

    def unbind(self, query_id: str) -> None:
        for interested in self._interest.values():
            interested.discard(query_id)

    def interested(self, relation: str) -> FrozenSet[str]:
        return frozenset(self._interest.get(relation, ()))

    def apply(self, update: Update) -> None:
        """Mutate the shared window — exactly once per update."""
        relation = self.relations.get(update.relation)
        if relation is None:
            raise PlanError(f"no registered stream {update.relation!r}")
        if update.sign is Sign.INSERT:
            relation.insert(update.row)
        else:
            relation.delete(update.row)

    def drop_idle(self) -> List[str]:
        """Free windows no registered query references (explicit opt-in)."""
        dropped = []
        for name in sorted(self.relations):
            if not self._interest.get(name):
                del self.relations[name]
                self._interest.pop(name, None)
                dropped.append(name)
        return dropped

    def memory_bytes(self) -> int:
        return sum(r.memory_bytes for r in self.relations.values())


@dataclass
class _QueryRuntime:
    """One registered query's engine and bookkeeping."""

    query_id: str
    engine: ACaching
    relations: FrozenSet[str]
    obs: Observability
    token_of: Callable[[CandidateCache], Tuple]


def _validate_tenant_config(config) -> None:
    """Reject EngineConfig features that would break shared execution."""
    if config is None:
        return
    if getattr(config, "batch_size", 1) != 1:
        raise ConfigError(
            "multi-query engines process updates one at a time "
            "(batch_size must be 1): shared windows advance at update "
            "granularity for every tenant"
        )
    if getattr(config, "shards", 1) != 1:
        raise ConfigError(
            "multi-query engines are single-shard; shard the whole "
            "engine, not individual tenants"
        )
    if getattr(config, "resilience", None) is not None:
        raise ConfigError(
            "per-tenant resilience (shedding/quarantine) is not supported "
            "on a shared engine: one tenant dropping an update would "
            "desynchronize the shared windows"
        )
    if getattr(config, "wal_dir", None) is not None:
        raise ConfigError(
            "per-tenant WAL/checkpointing is not supported on a shared "
            "engine"
        )


class MultiQueryEngine:
    """Hosts N adaptive queries over shared streams and one memory pool.

    ``budget_bytes`` is the *global* cache budget arbitrated across all
    tenants (None = unbounded). ``share_caches=False`` keeps windows
    shared but gives every query private stores (useful for measuring
    the value of inter-query sharing; the bench does exactly that).
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        share_caches: bool = True,
        memory_check_every_updates: int = 500,
        tracing: bool = False,
    ):
        if memory_check_every_updates <= 0:
            raise ConfigError("memory_check_every_updates must be positive")
        self.hub = StreamHub()
        self.directory = InterQueryCacheDirectory()
        self.arbiter = GlobalMemoryArbiter(budget_bytes)
        self.share_caches = share_caches
        self.memory_check_every_updates = memory_check_every_updates
        self.tracing = tracing
        self._queries: Dict[str, _QueryRuntime] = {}
        self._updates_since_check = 0

    # ------------------------------------------------------------------
    # query lifecycle (runtime add/remove at update boundaries)
    # ------------------------------------------------------------------
    def register(self, query_id: str, workload, config=None) -> ACaching:
        """Splice a query in at an update boundary.

        The query binds the hub's live relations, so it is warm from the
        first update: its pipelines and caches see exactly the window
        contents an engine running since stream start would hold.
        ``config`` is an :class:`repro.api.EngineConfig` (or None for
        defaults); tenancy fields (``tenant_min_bytes``,
        ``tenant_max_bytes``, ``share_caches``) are honored, and
        features incompatible with shared execution are rejected.
        """
        if not query_id or not isinstance(query_id, str):
            raise ConfigError("query_id must be a non-empty string")
        if query_id in self._queries:
            raise ConfigError(f"query {query_id!r} already registered")
        _validate_tenant_config(config)
        quota = TenantQuota(
            min_bytes=getattr(config, "tenant_min_bytes", 0),
            max_bytes=getattr(config, "tenant_max_bytes", None),
        )
        share = self.share_caches and getattr(config, "share_caches", True)
        graph = workload.graph

        def token_of(candidate: CandidateCache) -> Tuple:
            if share:
                token = inter_query_token(graph, candidate)
                if token is not None:
                    return ("shared",) + token
            return ("solo", query_id, candidate.share_token)

        self.arbiter.register_tenant(query_id, quota)
        try:
            relations = self.hub.bind(query_id, graph)
            obs = self._build_observability(query_id)
            acaching_config = (
                config.acaching_config() if config is not None else None
            )
            engine = ACaching(
                graph,
                orders=getattr(config, "orders", None),
                indexed_attributes=workload.indexed_attributes,
                config=acaching_config,
                ctx=ExecContext(obs=obs),
                relations=relations,
                wiring_factory=(
                    (
                        lambda executor: SharedCacheWiring(
                            executor, self.directory, query_id
                        )
                    )
                    if share
                    else None
                ),
                allocator=TenantAllocator(self.arbiter, query_id, token_of),
            )
        except Exception:
            self.hub.unbind(query_id)
            self.arbiter.unregister_tenant(query_id)
            raise
        runtime = _QueryRuntime(
            query_id=query_id,
            engine=engine,
            relations=frozenset(graph.relations),
            obs=obs,
            token_of=token_of,
        )
        self._queries[query_id] = runtime
        return engine

    def _build_observability(self, query_id: str) -> Observability:
        if self.tracing:
            obs = Observability.tracing()
            obs.decisions.query_id = query_id
            return obs
        return Observability(decisions=DecisionLog(query_id=query_id))

    def unregister(self, query_id: str) -> None:
        """Remove a query at an update boundary.

        Unwires every cache through the inter-query directory, so only
        stores no surviving query references are dropped; shared windows
        stay warm (see :meth:`StreamHub.drop_idle`).
        """
        runtime = self._queries.pop(query_id, None)
        if runtime is None:
            raise PlanError(f"query {query_id!r} is not registered")
        runtime.engine.reoptimizer.wiring.detach_all()
        self.hub.unbind(query_id)
        self.arbiter.unregister_tenant(query_id)

    def queries(self) -> List[str]:
        return list(self._queries)

    def engine_for(self, query_id: str) -> ACaching:
        runtime = self._queries.get(query_id)
        if runtime is None:
            raise PlanError(f"query {query_id!r} is not registered")
        return runtime.engine

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def process(self, update: Update) -> Dict[str, List[OutputDelta]]:
        """Run one shared-stream update through every interested query.

        Queries run in registration order with ``apply_window=False``;
        the shared window mutation happens exactly once afterwards — in
        a ``finally`` block, so windows stay consistent with the update
        sequence even if one tenant's pipeline raises.
        """
        if update.relation not in self.hub.relations:
            raise PlanError(f"no registered stream {update.relation!r}")
        outputs: Dict[str, List[OutputDelta]] = {}
        try:
            for query_id, runtime in self._queries.items():
                if update.relation in runtime.relations:
                    outputs[query_id] = runtime.engine.process(
                        update, apply_window=False
                    )
        finally:
            self.hub.apply(update)
        self._updates_since_check += 1
        if (
            self.arbiter.budget_bytes is not None
            and self._updates_since_check >= self.memory_check_every_updates
        ):
            self._updates_since_check = 0
            self.enforce_global_memory()
        return outputs

    def run(
        self, updates: Iterable[Update]
    ) -> Dict[str, List[OutputDelta]]:
        """Process a whole update sequence; per-query delta lists."""
        outputs: Dict[str, List[OutputDelta]] = {
            query_id: [] for query_id in self._queries
        }
        for update in updates:
            for query_id, deltas in self.process(update).items():
                outputs.setdefault(query_id, []).extend(deltas)
        return outputs

    # ------------------------------------------------------------------
    # global memory enforcement (Section 5 across tenants)
    # ------------------------------------------------------------------
    def _physical_stores(self) -> List[Dict[str, object]]:
        """Distinct live stores with their per-query users (deduped)."""
        stores: Dict[int, Dict[str, object]] = {}
        for query_id, runtime in self._queries.items():
            wiring = runtime.engine.reoptimizer.wiring
            for candidate_id, wired in wiring.wired.items():
                info = stores.setdefault(
                    id(wired.cache), {"cache": wired.cache, "users": []}
                )
                info["users"].append((query_id, candidate_id, wired))
        return list(stores.values())

    def memory_in_use(self) -> int:
        """Bytes across all distinct physical stores (shared counted once)."""
        return sum(
            info["cache"].memory_bytes for info in self._physical_stores()
        )

    def enforce_global_memory(self) -> List[Tuple[str, str]]:
        """Evict lowest-value stores until global usage fits the budget.

        Value of a store is the *sum* of its users' net benefits per byte
        (a store three queries lean on outranks a same-sized store one
        query uses — the arbiter's admission argument, applied to
        eviction). Victims are unwired through every using query's own
        re-optimizer so candidate states and decision logs stay
        consistent; returns the evicted ``(query_id, candidate_id)``
        pairs.
        """
        budget = self.arbiter.budget_bytes
        if budget is None:
            return []
        stores = self._physical_stores()
        used = sum(info["cache"].memory_bytes for info in stores)
        if used <= budget:
            return []
        entries = []
        for info in stores:
            cache = info["cache"]
            users = sorted(info["users"], key=lambda u: (u[0], u[1]))
            size = max(1, cache.memory_bytes)
            net = 0.0
            for query_id, candidate_id, wired in users:
                runtime = self._queries[query_id]
                stats = runtime.engine.profiler.statistics_for(
                    wired.candidate
                )
                if stats is not None:
                    net += cost_model.net_benefit(
                        stats, runtime.engine.ctx.cost_model
                    )
            entries.append((net / size, users[0][1], info, users))
        entries.sort(key=lambda e: (e[0], e[1]))
        evicted: List[Tuple[str, str]] = []
        excess = used - budget
        for _, _, info, users in entries:
            if excess <= 0:
                break
            freed = info["cache"].memory_bytes
            token = None
            for query_id, candidate_id, wired in users:
                runtime = self._queries[query_id]
                if token is None:
                    token = runtime.token_of(wired.candidate)
                runtime.engine.reoptimizer.drop_candidate(
                    candidate_id,
                    reason=(
                        f"global memory pressure: {used} bytes in use "
                        f"over budget {budget}"
                    ),
                )
                evicted.append((query_id, candidate_id))
            if token is not None:
                self.arbiter.forget_token(token)
            excess -= freed
        return evicted

    # ------------------------------------------------------------------
    # merged observability
    # ------------------------------------------------------------------
    def decisions(self) -> List[Dict[str, object]]:
        """All tenants' decision records, merged chronologically.

        Every record carries its ``query_id`` (satellite of PR 8), so the
        merged log stays attributable.
        """
        records: List[Dict[str, object]] = []
        for runtime in self._queries.values():
            records.extend(
                r.to_dict() for r in runtime.obs.decisions.entries()
            )
        records.sort(
            key=lambda r: (r.get("t_us", 0.0), r.get("query_id", ""),
                           r.get("seq", 0))
        )
        return records

    def metrics_prometheus(self) -> str:
        """One exposition merging every tenant's registry.

        Each sample gains a ``query_id`` label (escaped per the
        exposition rules); one ``# HELP``/``# TYPE`` per family.
        """
        return registries_to_prometheus(
            {qid: rt.obs.registry for qid, rt in self._queries.items()},
            metrics_of={
                qid: rt.engine.ctx.metrics
                for qid, rt in self._queries.items()
            },
        )

    def aggregate_hit_rate(self) -> float:
        """Cache hits over probes, summed across all tenants."""
        probes = sum(
            rt.engine.ctx.metrics.cache_probes
            for rt in self._queries.values()
        )
        hits = sum(
            rt.engine.ctx.metrics.cache_hits
            for rt in self._queries.values()
        )
        return hits / probes if probes else 0.0

    def modeled_cost_us(self) -> float:
        """Summed virtual-clock time across all tenants' executors."""
        return sum(
            rt.engine.ctx.clock.now_us for rt in self._queries.values()
        )

    def snapshot(self) -> Dict[str, object]:
        """Engine-level state for status endpoints and the bench."""
        return {
            "queries": sorted(self._queries),
            "streams": sorted(self.hub.relations),
            "window_bytes": self.hub.memory_bytes(),
            "cache_bytes": self.memory_in_use(),
            "shared_stores": self.directory.shared_store_count(),
            "arbiter": self.arbiter.snapshot(),
            "aggregate_hit_rate": self.aggregate_hit_rate(),
        }
