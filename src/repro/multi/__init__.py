"""Multi-query execution: shared streams, shared caches, one memory pool.

The paper's Section 4.4 models shared-cache groups *within* one query's
pipelines. This package extends the same idea across queries: a
:class:`~repro.multi.engine.MultiQueryEngine` hosts N registered
continuous queries over shared window state (each stream ingested once),
an :class:`~repro.multi.directory.InterQueryCacheDirectory` lets
subresult caches with provably identical contents back one physical
store across queries, and a
:class:`~repro.multi.arbiter.GlobalMemoryArbiter` arbitrates one memory
budget across all tenants by net benefit per byte, with per-tenant
min/max reservations.

Queries can be added and removed at runtime: an added query splices in at
an update boundary and warms from the shared windows; a removed query
releases only the cache bytes no surviving query references.
"""

from repro.multi.arbiter import (
    GlobalMemoryArbiter,
    TenantAllocator,
    TenantQuota,
)
from repro.multi.directory import InterQueryCacheDirectory, SharedCacheWiring
from repro.multi.engine import MultiQueryEngine, StreamHub

__all__ = [
    "GlobalMemoryArbiter",
    "InterQueryCacheDirectory",
    "MultiQueryEngine",
    "SharedCacheWiring",
    "StreamHub",
    "TenantAllocator",
    "TenantQuota",
]
