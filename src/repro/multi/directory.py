"""Inter-query shared-cache directory and the wiring that consults it.

Definition 4.1 shares a physical store between candidates *of one query*
whose segment join is identical. The directory extends the same
containment argument across queries: two exact-consistency candidates
from different queries whose member set, key signature, and
segment-internal predicate signature all match (see
:func:`repro.core.candidates.inter_query_token`) materialize the same
set of entries over the shared windows, so they may back one physical
store.

Maintenance taps for a shared store attach in exactly one query's
pipelines — the *tap host*. Any query's taps suffice: tap composites
cover exactly the segment slots, which the token proves identical across
users. When the host query detaches (re-optimization, reorder, or
removal from the engine), the taps re-home deterministically to the
lexicographically smallest surviving user, and the store itself is
dropped only when no user remains — removing a query releases only the
bytes no surviving query references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.caching.cache import Cache
from repro.core.candidates import CandidateCache, inter_query_token
from repro.core.wiring import CacheWiring, WiredCache
from repro.mjoin.executor import MJoinExecutor


@dataclass
class SharedStoreEntry:
    """One physical store shared across queries."""

    cache: Cache
    token: Tuple
    tap_slot: int
    maintained: Tuple[str, ...]
    host: str
    users: Dict[str, "SharedCacheWiring"] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cache": self.cache.name,
            "host": self.host,
            "users": sorted(self.users),
            "entries": len(self.cache),
            "memory_bytes": self.cache.memory_bytes,
        }


class InterQueryCacheDirectory:
    """Token -> shared physical store, with refcounts and tap hosting."""

    def __init__(self) -> None:
        self._stores: Dict[Tuple, SharedStoreEntry] = {}

    def acquire(
        self,
        query_id: str,
        wiring: "SharedCacheWiring",
        token: Tuple,
        candidate: CandidateCache,
        buckets: int,
    ) -> Tuple[Cache, bool]:
        """Join (or create) the shared store for ``token``.

        Returns ``(store, attach_taps)``; ``attach_taps`` is True only for
        the creating query, which becomes the tap host.
        """
        entry = self._stores.get(token)
        if entry is None:
            entry = SharedStoreEntry(
                cache=wiring._build_cache(candidate, buckets),
                token=token,
                tap_slot=len(candidate.maintenance_set) - 1,
                maintained=tuple(sorted(candidate.tap_relations)),
                host=query_id,
            )
            self._stores[token] = entry
            entry.users[query_id] = wiring
            return entry.cache, True
        entry.users[query_id] = wiring
        return entry.cache, False

    def release(
        self, query_id: str, wiring: "SharedCacheWiring", token: Tuple
    ) -> bool:
        """Drop ``query_id``'s claim on the store for ``token``.

        Called when the query's *last* local candidate of the token
        detaches. Returns True when the physical store was dropped (no
        surviving user); otherwise re-homes the maintenance taps if the
        departing query hosted them and returns False.
        """
        entry = self._stores.get(token)
        if entry is None:
            return True
        entry.users.pop(query_id, None)
        if not entry.users:
            if entry.host == query_id:
                wiring._detach_taps(entry.cache, entry.maintained)
            del self._stores[token]
            entry.cache.drop_all()
            return True
        if entry.host == query_id:
            wiring._detach_taps(entry.cache, entry.maintained)
            new_host = min(entry.users)
            entry.users[new_host]._attach_taps(
                entry.cache, entry.tap_slot, entry.maintained
            )
            entry.host = new_host
        return False

    def forget(self, token: Tuple) -> None:
        """Drop directory state for a token (store already unwired)."""
        self._stores.pop(token, None)

    def entry_for(self, token: Tuple) -> Optional[SharedStoreEntry]:
        return self._stores.get(token)

    def shared_store_count(self) -> int:
        """Stores currently referenced by two or more queries."""
        return sum(1 for e in self._stores.values() if len(e.users) > 1)

    def snapshot(self) -> List[Dict[str, object]]:
        """Stable-order description of every live shared store."""
        return [
            self._stores[token].to_dict()
            for token in sorted(self._stores, key=repr)
        ]

    def __len__(self) -> int:
        return len(self._stores)


class SharedCacheWiring(CacheWiring):
    """Per-query wiring that sources shareable stores from the directory.

    Only prefix-invariant, exact-consistency candidates are eligible
    (``inter_query_token`` returns None for globally-consistent caches,
    whose contents depend on the owner query's anchor windows). Everything
    else falls back to the base per-query behavior, including intra-query
    share groups.
    """

    def __init__(
        self,
        executor: MJoinExecutor,
        directory: InterQueryCacheDirectory,
        query_id: str,
    ):
        super().__init__(executor)
        self.directory = directory
        self.query_id = query_id
        # share_token -> inter-query token, for tokens held via the
        # directory (used to route the matching release).
        self._shared_tokens: Dict[Tuple, Tuple] = {}

    def _acquire_store(
        self, candidate: CandidateCache, buckets: int
    ) -> Tuple[Cache, bool]:
        token = candidate.share_token
        if token in self._instances:
            # A local share-group sibling already holds the store; taps
            # (ours or another query's) are in place.
            return self._instances[token], False
        inter = inter_query_token(self.executor.graph, candidate)
        if inter is None:
            return super()._acquire_store(candidate, buckets)
        cache, attach_taps = self.directory.acquire(
            self.query_id, self, inter, candidate, buckets
        )
        self._instances[token] = cache
        self._shared_tokens[token] = inter
        return cache, attach_taps

    def _release_store(self, wired: WiredCache) -> bool:
        inter = self._shared_tokens.pop(wired.candidate.share_token, None)
        if inter is None:
            return super()._release_store(wired)
        return self.directory.release(self.query_id, self, inter)
