"""The repro.api facade: EngineConfig, Session, and the legacy shims.

Facade-built engines must be *identical* to legacy-built ones — same
plans, same caches, same outputs, same virtual clock, point for point —
and the old keyword entry points must still work while warning.
"""

import warnings

import pytest

from repro.api import (
    EngineConfig,
    Session,
    build_adaptive_engine,
    build_static_plan,
)
from repro.core.acaching import ACaching
from repro.engine.runtime import _build_static_plan, static_plan
from repro.errors import PlanError
from repro.streams.events import DeltaBatch, Update, batched
from repro.streams.workloads import fig9_workload, three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def chain():
    return three_way_chain(t_multiplicity=5.0, window_r=64, window_s=64)


def drive(plan, workload, arrivals):
    """Outputs per update plus the final clock, for exact comparison."""
    outputs = []
    for update in workload.updates(arrivals):
        outputs.append(
            [
                (d.sign, tuple(sorted(d.composite.relations())))
                for d in plan.process(update)
            ]
        )
    return outputs, plan.ctx.clock.now_us


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(PlanError):
            EngineConfig(batch_size=0)
        with pytest.raises(PlanError):
            EngineConfig(shards=0)
        with pytest.raises(PlanError):
            EngineConfig(parallel_backend="threads")

    def test_normalizes_orders_and_candidates(self):
        config = EngineConfig(
            orders={"T": ["S", "R"]}, candidate_ids=["T:0-1p"]
        )
        assert config.orders == {"T": ("S", "R")}
        assert config.candidate_ids == ("T:0-1p",)

    def test_global_quota_reaches_reoptimizer(self):
        config = EngineConfig(global_quota=3)
        assert config.acaching_config().reoptimizer.global_quota == 3

    def test_tuning_wins_over_quota(self):
        from repro.core.acaching import ACachingConfig
        from repro.core.reoptimizer import ReoptimizerConfig

        tuning = ACachingConfig(
            reoptimizer=ReoptimizerConfig(global_quota=9)
        )
        config = EngineConfig(global_quota=2, tuning=tuning)
        assert config.acaching_config().reoptimizer.global_quota == 9

    def test_engine_spec_kinds(self):
        config = EngineConfig(orders=CHAIN_ORDERS, candidate_ids=("T:0-1p",))
        assert config.engine_spec("adaptive").kind == "acaching"
        static = config.engine_spec("static")
        assert static.kind == "static"
        assert static.candidate_ids == ("T:0-1p",)
        assert config.engine_spec("mjoin").kind == "mjoin"


class TestSessionEqualsLegacy:
    def test_static_session_matches_legacy_point_for_point(self):
        workload_a, workload_b = chain(), chain()
        legacy = _build_static_plan(
            workload_a, orders=CHAIN_ORDERS, candidate_ids=("T:0-1p",)
        )
        session = Session.static(
            workload_b,
            EngineConfig(orders=CHAIN_ORDERS, candidate_ids=("T:0-1p",)),
        )
        assert session.plan.used == legacy.used
        out_legacy = drive(legacy, workload_a, 800)
        out_session = drive(session, workload_b, 800)
        assert out_session == out_legacy

    def test_adaptive_session_matches_legacy_point_for_point(self):
        workload_a, workload_b = chain(), chain()
        legacy = ACaching(
            workload_a.graph,
            indexed_attributes=workload_a.indexed_attributes,
            config=EngineConfig(global_quota=4).acaching_config(),
        )
        session = Session.adaptive(workload_b, EngineConfig(global_quota=4))
        out_legacy = drive(legacy, workload_a, 1200)
        out_session = drive(session, workload_b, 1200)
        assert out_session == out_legacy
        assert session.used_caches() == tuple(legacy.used_caches())

    def test_session_series_runs(self):
        session = Session.adaptive(chain(), EngineConfig(batch_size=8))
        series = session.series(arrivals=1500, sample_every_updates=400)
        assert series
        assert all(p.shard_count == 1 for p in series)
        assert series[-1].updates == session.ctx.metrics.updates_processed

    def test_sharded_session_requires_factory(self):
        session = Session.adaptive(chain(), EngineConfig(shards=2))
        with pytest.raises(PlanError):
            session.run(arrivals=200)

    def test_run_needs_updates_or_arrivals(self):
        with pytest.raises(PlanError):
            Session.adaptive(chain()).run()

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            Session("turbo", chain())


class TestDeprecationShims:
    def test_static_plan_warns_and_still_works(self):
        workload = chain()
        with pytest.warns(DeprecationWarning, match="static_plan"):
            plan = static_plan(
                workload, orders=CHAIN_ORDERS, candidate_ids=("T:0-1p",)
            )
        assert plan.used == ("T:0-1p",)

    def test_for_workload_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="for_workload"):
            engine = ACaching.for_workload(chain())
        assert engine.executor is not None

    def test_facade_builders_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_static_plan(chain(), EngineConfig(orders=CHAIN_ORDERS))
            build_adaptive_engine(chain())
            Session.adaptive(chain()).plan


class TestDeltaBatch:
    def updates(self, count):
        workload = fig9_workload(3, window=16)
        return list(workload.updates(count))

    def test_batch_preserves_order_and_length(self):
        updates = self.updates(7)
        batch = DeltaBatch(updates)
        assert len(batch) == len(updates)
        assert list(batch) == updates
        assert batch[0] is updates[0]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            DeltaBatch([])

    def test_relations_first_seen_order(self):
        updates = self.updates(12)
        batch = DeltaBatch(updates)
        seen = list(dict.fromkeys(u.relation for u in updates))
        assert list(batch.relations) == seen

    def test_batched_chunks_consecutively(self):
        updates = self.updates(10)
        chunks = list(batched(iter(updates), 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [u for c in chunks for u in c] == updates

    def test_batched_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(batched(iter(self.updates(2)), 0))
