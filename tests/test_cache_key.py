"""Tests for cache key construction (Kijk) and sharing identity."""

import pytest

from repro.caching.key import CacheKey
from repro.errors import PlanError
from repro.relations.predicates import JoinGraph
from repro.streams.tuples import CompositeTuple, RowFactory, Schema
from repro.streams.workloads import star_graph


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


class TestChainKeys:
    def test_key_for_rs_segment_in_t_pipeline(self):
        graph = chain_graph()
        key = CacheKey(graph, ("T",), ("S", "R"))
        # Only S.B = T.B crosses; probe from the T side, store by S side.
        assert key.width == 1
        rows = RowFactory()
        t = rows.make((42,))
        assert key.probe_value(CompositeTuple.of("T", t)) == (42,)
        s = rows.make((1, 42))
        r = rows.make((1,))
        seg = CompositeTuple.of("S", s).extended("R", r)
        assert key.entry_key(seg) == (42,)

    def test_keyless_segment_rejected(self):
        graph = chain_graph()
        with pytest.raises(PlanError, match="empty"):
            CacheKey(graph, ("R",), ("T",))  # R and T share no predicate


class TestStarKeys:
    def test_multi_component_key(self):
        graph = star_graph(4)
        key = CacheKey(graph, ("R4",), ("R1", "R2"))
        # Closure gives R4-R1 and R4-R2 predicates: two components.
        assert key.width == 2
        rows = RowFactory()
        probe = CompositeTuple.of("R4", rows.make((9,)))
        assert key.probe_value(probe) == (9, 9)

    def test_shared_signature_across_pipelines(self):
        graph = star_graph(4)
        key_a = CacheKey(graph, ("R3",), ("R1", "R2"))
        key_b = CacheKey(graph, ("R4",), ("R1", "R2"))
        # Same segment, same (segment-side) key: shared per Definition 4.1.
        assert key_a.signature() == key_b.signature()

    def test_entry_keys_agree_for_shared_caches(self):
        graph = star_graph(4)
        key_a = CacheKey(graph, ("R3",), ("R1", "R2"))
        key_b = CacheKey(graph, ("R4",), ("R2", "R1"))  # reversed order
        rows = RowFactory()
        r1 = rows.make((5,))
        r2 = rows.make((5,))
        seg = CompositeTuple.of("R1", r1).extended("R2", r2)
        assert key_a.entry_key(seg) == key_b.entry_key(seg)

    def test_prefix_slots_exposed(self):
        graph = star_graph(4)
        key = CacheKey(graph, ("R4",), ("R1", "R2"))
        assert all(rel == "R4" for rel, _pos in key.prefix_slots)
