"""Tests for candidate enumeration, sharing, containment, and conflicts."""

import pytest

from repro.core.candidates import (
    containment_forest,
    enumerate_candidates,
    enumerate_global_candidates,
    enumerate_prefix_candidates,
    prefix_valid_sets,
    satisfies_prefix_invariant,
    shared_groups,
)
from repro.relations.predicates import JoinGraph
from repro.streams.tuples import Schema
from repro.streams.workloads import star_graph


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}

# Figure 5(a) of the paper: the six-way example pipelines.
FIGURE5_ORDERS = {
    "R1": ("R2", "R3", "R4", "R5", "R6"),
    "R2": ("R1", "R3", "R5", "R4", "R6"),
    "R3": ("R2", "R1", "R4", "R5", "R6"),
    "R4": ("R5", "R1", "R2", "R3", "R6"),
    "R5": ("R4", "R2", "R3", "R1", "R6"),
    "R6": ("R2", "R1", "R4", "R5", "R3"),
}


class TestPrefixInvariant:
    def test_figure3_configuration(self):
        # Example 3.4: the R2,R3 segment of ∆R1 satisfies the invariant
        # when ∆R2 joins R3 first and vice versa; here the R,S segment of
        # ∆T does.
        assert satisfies_prefix_invariant(frozenset({"R", "S"}), CHAIN_ORDERS)
        assert not satisfies_prefix_invariant(
            frozenset({"S", "T"}), CHAIN_ORDERS
        )
        # The full relation set always satisfies it.
        assert satisfies_prefix_invariant(
            frozenset({"R", "S", "T"}), CHAIN_ORDERS
        )

    def test_prefix_valid_sets(self):
        valid = prefix_valid_sets(CHAIN_ORDERS)
        assert frozenset({"R", "S"}) in valid
        assert frozenset({"R", "S", "T"}) in valid
        assert frozenset({"S", "T"}) not in valid


class TestEnumeration:
    def test_chain_prefix_candidates(self):
        graph = chain_graph()
        candidates = enumerate_prefix_candidates(graph, CHAIN_ORDERS)
        ids = {c.candidate_id for c in candidates}
        assert ids == {"T:0-1p"}
        (candidate,) = candidates
        assert candidate.segment == ("S", "R")
        assert candidate.prefix == ("T",)
        assert not candidate.is_global

    def test_global_candidates_fill_quota(self):
        graph = chain_graph()
        extras = enumerate_global_candidates(
            graph, CHAIN_ORDERS, quota=8,
            existing=enumerate_prefix_candidates(graph, CHAIN_ORDERS),
        )
        assert extras, "expected global candidates for invalid segments"
        for candidate in extras:
            assert candidate.is_global
            assert candidate.maintenance_set in prefix_valid_sets(
                CHAIN_ORDERS
            ) or satisfies_prefix_invariant(
                candidate.maintenance_set, CHAIN_ORDERS
            )

    def test_quota_zero_yields_prefix_only(self):
        graph = chain_graph()
        candidates = enumerate_candidates(graph, CHAIN_ORDERS, global_quota=0)
        assert all(not c.is_global for c in candidates)

    def test_quota_not_exceeded(self):
        graph = star_graph(5)
        orders = {
            f"R{i}": tuple(f"R{j}" for j in range(1, 6) if j != i)
            for i in range(1, 6)
        }
        candidates = enumerate_candidates(graph, orders, global_quota=6)
        assert len(candidates) <= max(
            6, len(enumerate_prefix_candidates(graph, orders))
        )

    def test_example_4_1_six_way(self):
        """The paper's Example 4.1: Figure 5(a) pipelines."""
        graph = star_graph(6)
        orders = FIGURE5_ORDERS
        valid = prefix_valid_sets(orders)
        # The paper: the prefix property holds for {R1,R2}, {R4,R5},
        # {R1,R2,R3}, and {R1,R2,R3,R4,R5}.
        assert frozenset({"R1", "R2"}) in valid
        assert frozenset({"R4", "R5"}) in valid
        assert frozenset({"R1", "R2", "R3"}) in valid
        assert frozenset({"R1", "R2", "R3", "R4", "R5"}) in valid
        candidates = enumerate_prefix_candidates(graph, orders)
        by_owner = {}
        for c in candidates:
            by_owner.setdefault(c.owner, []).append(c)
        # "there are two candidate caches in ∆R4's pipeline — one for the
        # R1,R2 segment and the other for the overlapping R1,R2,R3
        # segment" (order R5,R1,R2,R3,R6: slots 1-2 and 1-3).
        r4_sets = {frozenset(c.segment) for c in by_owner["R4"]}
        assert r4_sets == {
            frozenset({"R1", "R2"}),
            frozenset({"R1", "R2", "R3"}),
        }
        # "there are three candidate caches in ∆R6's pipeline" (order
        # R2,R1,R4,R5,R3: segments {R1,R2}, {R4,R5}, {R1..R5}).
        r6_sets = {frozenset(c.segment) for c in by_owner["R6"]}
        assert r6_sets == {
            frozenset({"R1", "R2"}),
            frozenset({"R4", "R5"}),
            frozenset({"R1", "R2", "R3", "R4", "R5"}),
        }


class TestSharing:
    def test_example_4_2_shared_groups(self):
        """Example 4.2: R1⋈R2 shared by ∆R3, ∆R4, ∆R6 pipelines."""
        graph = star_graph(6)
        candidates = enumerate_prefix_candidates(graph, FIGURE5_ORDERS)
        groups = shared_groups(candidates)
        r1r2_groups = [
            members
            for token, members in groups.items()
            if token[0] == frozenset({"R1", "R2"})
        ]
        assert len(r1r2_groups) == 1
        owners = {c.owner for c in r1r2_groups[0]}
        assert owners == {"R3", "R4", "R6"}


class TestContainmentAndConflicts:
    def test_forest_structure(self):
        graph = star_graph(6)
        candidates = enumerate_prefix_candidates(graph, FIGURE5_ORDERS)
        forests = containment_forest(candidates)
        # ∆R6's three candidates form one tree: the 5-way segment contains
        # both two-way ones (Figure 5(c)).
        (root,) = forests["R6"]
        assert len(root.candidate.segment) == 5
        child_sets = {frozenset(c.candidate.segment) for c in root.children}
        assert child_sets == {
            frozenset({"R1", "R2"}),
            frozenset({"R4", "R5"}),
        }
        # ∆R4's two candidates nest (Figure 5(b)).
        (r4_root,) = forests["R4"]
        assert len(r4_root.candidate.segment) == 3
        (r4_child,) = r4_root.children
        assert frozenset(r4_child.candidate.segment) == frozenset({"R1", "R2"})

    def test_overlap_and_conflict(self):
        graph = chain_graph()
        orders = {"R": ("T", "S"), "S": ("R", "T"), "T": ("S", "R")}
        candidates = enumerate_candidates(graph, orders, global_quota=8)
        by_id = {c.candidate_id: c for c in candidates}
        a = by_id["R:0-1g"]
        assert a.conflicts_with(a)
        for other in candidates:
            if other.owner == a.owner and other is not a:
                assert a.overlaps(other)

    def test_tap_relations_skip_owner_anchor(self):
        graph = chain_graph()
        orders = {"R": ("T", "S"), "S": ("R", "T"), "T": ("S", "R")}
        candidates = enumerate_candidates(graph, orders, global_quota=8)
        global_r = next(c for c in candidates if c.candidate_id == "R:0-1g")
        assert "R" in global_r.anchor
        assert "R" in global_r.maintenance_set
        assert "R" not in global_r.tap_relations
