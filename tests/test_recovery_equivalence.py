"""Property: a killed run, restored and resumed, is byte-identical.

The durability contract (ISSUE 5's hard guarantee): kill a journaled run
at *any* update index, under any crash damage the recovery subsystem
models (lost un-fsynced WAL tail, torn record, partial checkpoint), and
``restore() + resume`` reproduces exactly the deltas and final windows
the uninterrupted run emits — in both cache modes, serial and sharded.
"""

import os
from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, Session
from repro.errors import ConfigError, RecoveryError, ReproError
from repro.recovery.manager import Recorder, RecoveryConfig, RecoveryManager
from repro.recovery.snapshot import CheckpointStore, decode_snapshot, encode_snapshot
from repro.recovery.wal import WriteAheadLog, read_wal
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row
from repro.streams.workloads import fig9_workload, three_way_chain

ARRIVALS = 400
CHECKPOINT_INTERVAL = 120

WORKLOAD = partial(
    three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48
)


def window_contents(plan):
    executor = getattr(plan, "executor", plan)
    return {
        name: sorted((row.rid, row.values) for row in relation.rows())
        for name, relation in executor.relations.items()
    }


@pytest.fixture(scope="module")
def clean():
    session = Session.adaptive(WORKLOAD)
    deltas = session.run(arrivals=ARRIVALS)
    return deltas, window_contents(session.plan)


def crash_journaled_run(config: EngineConfig, kill_at: int) -> None:
    """Drive a journaled run and kill it after ``kill_at`` updates."""
    session = Session.adaptive(WORKLOAD, config)
    recorder = Recorder(session.plan, config.recovery())
    processed = 0
    for update in session.workload.updates(ARRIVALS):
        recorder.log(update)
        session.plan.process(update)
        processed += 1
        recorder.mark_processed()
        recorder.maybe_checkpoint(update.seq)
        if processed >= kill_at:
            break
    recorder.crash()


def assert_recovers_identically(config: EngineConfig, clean) -> None:
    clean_deltas, clean_windows = clean
    session = Session.adaptive(WORKLOAD, config)
    resumed = session.resume(ARRIVALS)
    # Resume returns every delta past the restored checkpoint; the clean
    # run emits deltas in update order, so they must match its tail.
    assert len(resumed) <= len(clean_deltas)
    assert clean_deltas[len(clean_deltas) - len(resumed):] == resumed
    assert window_contents(session.plan) == clean_windows


# ----------------------------------------------------------------------
# the core property: any kill index, both cache modes
# ----------------------------------------------------------------------
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture,
        HealthCheck.too_slow,
    ],
)
@given(
    kill_at=st.integers(min_value=1, max_value=850),
    cache_mode=st.sampled_from(["snapshot", "rebuild"]),
    fsync_every=st.sampled_from([1, 7, 32]),
)
def test_kill_anywhere_recovers_identically(
    tmp_path_factory, clean, kill_at, cache_mode, fsync_every
):
    wal_dir = str(
        tmp_path_factory.mktemp(f"kill-{kill_at}-{cache_mode}-{fsync_every}")
    )
    config = EngineConfig(
        wal_dir=wal_dir,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        wal_fsync_every=fsync_every,
        cache_recovery=cache_mode,
    )
    crash_journaled_run(config, kill_at)
    assert_recovers_identically(config, clean)


# ----------------------------------------------------------------------
# torn writes and corrupt checkpoints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cache_mode", ["snapshot", "rebuild"])
def test_torn_wal_tail_is_repaired(tmp_path, clean, cache_mode):
    config = EngineConfig(
        wal_dir=str(tmp_path),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        wal_fsync_every=16,
        cache_recovery=cache_mode,
    )
    crash_journaled_run(config, 300)
    # The OS flushed part of a page: a record cut mid-payload.
    with open(config.recovery().wal_path, "ab") as handle:
        handle.write(b'57 {"relation":"R","rid"')
    updates, torn, _valid = read_wal(config.recovery().wal_path)
    assert torn and updates
    assert_recovers_identically(config, clean)
    # The repair truncation removed the garbage for good.
    _, torn_after, _ = read_wal(config.recovery().wal_path)
    assert not torn_after


def test_corrupt_checkpoint_falls_back_to_previous(tmp_path, clean):
    config = EngineConfig(
        wal_dir=str(tmp_path),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        wal_fsync_every=16,
    )
    crash_journaled_run(config, 310)  # >= two checkpoints at interval 120
    store = CheckpointStore(config.recovery().checkpoint_dir)
    seqs = store.seqs()
    assert len(seqs) >= 2
    # Flip bytes in the newest snapshot: its checksum must now fail.
    newest = store.path_for(seqs[-1])
    data = open(newest, "rb").read()
    with open(newest, "wb") as handle:
        handle.write(data[: len(data) // 2] + b"\xff\xff" + data[len(data) // 2 + 2:])
    manager = RecoveryManager(
        config.recovery(), builder=lambda: Session.adaptive(WORKLOAD).plan
    )
    restored = manager.restore()
    assert restored.skipped_checkpoints == 1
    assert restored.checkpoint_seq == seqs[-2]
    assert_recovers_identically(config, clean)


def test_truncated_checkpoint_mid_write_is_skipped(tmp_path, clean):
    config = EngineConfig(
        wal_dir=str(tmp_path),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        wal_fsync_every=16,
    )
    crash_journaled_run(config, 300)
    store = CheckpointStore(config.recovery().checkpoint_dir)
    newest = store.seqs()[-1]
    # A kill mid-checkpoint-write leaves a partial file newer than any
    # complete one; it must fail validation, not win latest_valid().
    data = encode_snapshot({"seq": newest + 50, "cache_mode": "snapshot"})
    with open(store.path_for(newest + 50), "wb") as handle:
        handle.write(data[: len(data) // 3])
    seq, payload, skipped = store.latest_valid()
    assert seq == newest and payload is not None and skipped == 1
    assert_recovers_identically(config, clean)


def test_everything_lost_means_full_rerun(tmp_path, clean):
    """No checkpoint, no WAL: restore degenerates to a clean run."""
    config = EngineConfig(wal_dir=str(tmp_path))
    session = Session.adaptive(WORKLOAD, config)
    resumed = session.resume(ARRIVALS)
    clean_deltas, clean_windows = clean
    assert resumed == clean_deltas
    assert window_contents(session.plan) == clean_windows


# ----------------------------------------------------------------------
# sharded: supervised restarts recover per-shard journals
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cache_mode", ["snapshot", "rebuild"])
@pytest.mark.parametrize("kill_after", [40, 250])
def test_sharded_crash_recovers_identically(tmp_path, cache_mode, kill_after):
    from repro.parallel.supervisor import SupervisionConfig, WorkerCrash

    factory = partial(fig9_workload, 3, window=24)
    arrivals = 600
    clean = Session.adaptive(factory, EngineConfig(shards=2)).run(
        arrivals=arrivals
    )
    config = EngineConfig(
        shards=2,
        wal_dir=str(tmp_path),
        checkpoint_interval=100,
        wal_fsync_every=16,
        cache_recovery=cache_mode,
        supervision=SupervisionConfig(
            heartbeat_every_updates=50,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
        ),
    )
    session = Session.adaptive(factory, config)
    run = session.execute(
        arrivals=arrivals,
        output_mode="deltas",
        crashes=[WorkerCrash(shard=1, after_updates=kill_after)],
    )
    assert run.restarts == {1: 1}
    assert [d for _, _, d in run.merged_deltas()] == clean


# ----------------------------------------------------------------------
# WAL and snapshot container units
# ----------------------------------------------------------------------
def _update(seq, rid=None, relation="R", sign=Sign.INSERT):
    return Update(relation, Row(rid if rid is not None else seq, (seq,)), sign, seq)


def test_wal_round_trip(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = WriteAheadLog(path, fsync_every=2)
    updates = [_update(i, sign=Sign.INSERT if i % 2 else Sign.DELETE) for i in range(7)]
    for update in updates:
        wal.append(update)
    wal.close()
    decoded, torn, valid = read_wal(path)
    assert decoded == updates
    assert not torn
    assert valid == os.path.getsize(path)


def test_wal_corrupt_value_round_trips(tmp_path):
    from repro.faults.plan import CORRUPT

    path = str(tmp_path / "wal.jsonl")
    wal = WriteAheadLog(path)
    update = Update("R", Row(5, (1, CORRUPT, "x")), Sign.INSERT, 5)
    wal.append(update)
    wal.close()
    (decoded,), torn, _ = read_wal(path)
    assert not torn
    assert decoded.row.values[1] is CORRUPT
    assert decoded.row.values[::2] == (1, "x")


def test_wal_abandon_loses_only_unfsynced_tail(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = WriteAheadLog(path, fsync_every=4)
    for i in range(10):  # fsyncs at 4 and 8; records 9 and 10 are in limbo
        wal.append(_update(i))
    wal.abandon()
    decoded, torn, _ = read_wal(path)
    assert [u.seq for u in decoded] == list(range(8))
    assert not torn


def test_read_wal_stops_at_torn_record(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    wal = WriteAheadLog(path, fsync_every=1)
    for i in range(3):
        wal.append(_update(i))
    wal.close()
    good_size = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(b"999 {\"relation\"")
    decoded, torn, valid = read_wal(path)
    assert [u.seq for u in decoded] == [0, 1, 2]
    assert torn and valid == good_size


def test_snapshot_checksum_rejects_corruption():
    payload = {"seq": 7, "cache_mode": "rebuild", "windows": {"R": []}}
    data = encode_snapshot(payload)
    assert decode_snapshot(data) == payload
    corrupted = data[:-3] + b"\x00\x00\x00"
    with pytest.raises(RecoveryError):
        decode_snapshot(corrupted)
    with pytest.raises(RecoveryError):
        decode_snapshot(data[: len(data) - 5])  # short payload
    with pytest.raises(RecoveryError):
        decode_snapshot(b"NOPE 1 3 abc\nxyz")  # bad magic


def test_checkpoint_store_prunes_oldest(tmp_path):
    store = CheckpointStore(str(tmp_path))
    for seq in (10, 20, 30):
        store.write(seq, {"seq": seq})
    store.prune(keep=2)
    assert store.seqs() == [20, 30]


# ----------------------------------------------------------------------
# validation: ReproError subclasses naming the offending field
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(checkpoint_interval=0), "checkpoint_interval"),
        (dict(wal_fsync_every=0), "wal_fsync_every"),
        (dict(cache_recovery="magic"), "cache_recovery"),
    ],
)
def test_engine_config_recovery_validation(kwargs, needle):
    with pytest.raises(ConfigError) as err:
        EngineConfig(wal_dir="/tmp/x", **kwargs)
    assert needle in str(err.value)
    assert isinstance(err.value, ReproError)
    assert isinstance(err.value, ValueError)  # seed-era except clauses


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(wal_dir=""), "wal_dir"),
        (dict(wal_dir="x", checkpoint_interval=0), "checkpoint_interval"),
        (dict(wal_dir="x", fsync_every=0), "fsync_every"),
        (dict(wal_dir="x", cache_mode="none"), "cache_mode"),
        (dict(wal_dir="x", keep_checkpoints=0), "keep_checkpoints"),
    ],
)
def test_recovery_config_validation(kwargs, needle):
    with pytest.raises(ConfigError) as err:
        RecoveryConfig(**kwargs)
    assert needle in str(err.value)


def test_restore_without_wal_dir_is_a_config_error():
    session = Session.adaptive(WORKLOAD)
    with pytest.raises(ConfigError):
        session.restore()
