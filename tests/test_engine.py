"""Tests for the clock, metrics, runtime helpers, and plan runners."""

import pytest

from repro.engine.clock import CostModel, Stopwatch, VirtualClock, WallClock
from repro.engine.metrics import Metrics
from repro.engine.runtime import available_candidates, run_with_series, static_plan
from repro.errors import PlanError
from repro.planner.enumeration import (
    best_xjoin,
    measured_run,
    plan_spectrum,
    run_acaching,
    run_mjoin,
)
from repro.streams.events import Sign
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


class TestClock:
    def test_virtual_clock_accumulates(self):
        clock = VirtualClock()
        clock.charge(500.0)
        clock.charge(1500.0)
        assert clock.now_us == 2000.0
        assert clock.now_seconds == pytest.approx(0.002)

    def test_wall_clock_ignores_charges(self):
        clock = WallClock()
        before = clock.now_us
        clock.charge(10**9)
        assert clock.now_us - before < 1e6  # charging added nothing

    def test_stopwatch(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.charge(42.0)
        assert watch.elapsed_us() == 42.0

    def test_calibration_three_way_mjoin_rate(self):
        """The cost model keeps rates in the paper's 10^4-10^5 range."""
        from repro.mjoin.executor import MJoinExecutor

        workload = three_way_chain(
            t_multiplicity=5.0, window_r=64, window_s=64
        )
        executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
        executor.run(workload.updates(3000))
        rate = executor.ctx.metrics.throughput(
            executor.ctx.clock.now_seconds
        )
        assert 10_000 <= rate <= 500_000


class TestMetrics:
    def test_throughput(self):
        metrics = Metrics(updates_processed=100)
        assert metrics.throughput(2.0) == 50.0
        assert metrics.throughput(0.0) == 0.0

    def test_hit_rate_and_probe_recording(self):
        metrics = Metrics()
        metrics.record_probe("c", hit=True)
        metrics.record_probe("c", hit=False)
        assert metrics.hit_rate == 0.5
        assert metrics.per_cache_hits == {"c": 1}

    def test_snapshot_is_detached(self):
        metrics = Metrics(updates_processed=5)
        snap = metrics.snapshot()
        metrics.updates_processed = 99
        assert snap.updates_processed == 5


class TestStaticPlanRuntime:
    def test_available_candidates(self):
        workload = three_way_chain()
        ids = available_candidates(workload, orders=CHAIN_ORDERS)
        assert "T:0-1p" in ids
        assert "R:0-1g" in ids

    def test_static_plan_unknown_candidate(self):
        workload = three_way_chain()
        with pytest.raises(PlanError, match="unknown candidate"):
            static_plan(workload, orders=CHAIN_ORDERS, candidate_ids=["nope"])

    def test_static_plan_conflicting_candidates(self):
        workload = three_way_chain()
        orders = {"R": ("T", "S"), "S": ("R", "T"), "T": ("S", "R")}
        ids = available_candidates(workload, orders=orders)
        overlapping = [i for i in ids if i.startswith("R:")][:2]
        if len(overlapping) >= 2:
            with pytest.raises(PlanError, match="conflict"):
                static_plan(
                    workload, orders=orders, candidate_ids=overlapping
                )

    def test_run_with_series_samples(self):
        workload = three_way_chain(t_multiplicity=3.0, window_r=16, window_s=16)
        plan = static_plan(workload, orders=CHAIN_ORDERS, candidate_ids=[])
        series = run_with_series(
            plan,
            workload.updates(2000),
            sample_every_updates=500,
            x_of=lambda u: u.relation == "S" and u.sign is Sign.INSERT,
        )
        assert len(series) >= 3
        assert all(p.window_throughput > 0 for p in series)
        xs = [p.x for p in series]
        assert xs == sorted(xs)


class TestPlanRunners:
    def test_measured_run_excludes_warmup(self):
        workload = three_way_chain(t_multiplicity=3.0, window_r=16, window_s=16)
        from repro.mjoin.executor import MJoinExecutor

        executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
        rate = measured_run(executor, workload, arrivals=800, warmup_fraction=0.5)
        assert rate > 0

    def test_run_mjoin_static_orders(self):
        result = run_mjoin(
            lambda: three_way_chain(
                t_multiplicity=3.0, window_r=16, window_s=16
            ),
            arrivals=800,
            adaptive_ordering=False,
            orders=CHAIN_ORDERS,
        )
        assert result.label == "MJoin"
        assert result.throughput > 0
        assert result.detail["orders"]["T"] == ("S", "R")

    def test_best_xjoin_searches_trees(self):
        result = best_xjoin(
            lambda: three_way_chain(
                t_multiplicity=3.0, window_r=16, window_s=16
            ),
            arrivals=800,
        )
        assert result.detail["trees_searched"] == 2
        assert result.memory_peak_bytes > 0

    def test_run_acaching_reports_caches(self):
        result = run_acaching(
            lambda: three_way_chain(
                t_multiplicity=5.0, window_r=24, window_s=24
            ),
            arrivals=4000,
            global_quota=0,
            reopt_interval_updates=1500,
            stat_window=4,
        )
        assert "used_caches" in result.detail
        assert result.throughput > 0
