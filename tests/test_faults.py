"""Fault injection and graceful degradation (repro.faults)."""

import math

import pytest

from repro.bench.figures import CHAIN_ORDERS, FORCED_CACHE
from repro.engine.runtime import run_with_series, static_plan
from repro.errors import ResilienceError, WorkloadError
from repro.faults.auditor import AuditorConfig
from repro.faults.guard import (
    ARITY_MISMATCH,
    CORRUPT_VALUE,
    DUPLICATE_DELETE,
    DUPLICATE_INSERT,
    ORPHAN_DELETE,
    UNKNOWN_RELATION,
    DeadLetterBuffer,
    QuarantinedUpdate,
)
from repro.faults.plan import CORRUPT, FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig, ResilienceController
from repro.faults.shedding import LoadShedder, SheddingConfig
from repro.mjoin.executor import MJoinExecutor
from repro.obs.decisions import (
    COHERENCE_DETACH,
    COHERENCE_REBUILD,
    QUARANTINE,
    SHED_START,
    SHED_STOP,
)
from repro.operators.base import ExecContext
from repro.streams.events import Sign, Update
from repro.streams.sources import DeficitScheduler
from repro.streams.tuples import Row
from repro.streams.workloads import three_way_chain


def small_chain():
    return three_way_chain(t_multiplicity=3.0, window_r=48, window_s=48)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
def fingerprint(plan, source):
    return [
        (u.relation, u.row.rid, u.sign, u.seq, repr(u.row.values))
        for u in plan.updates(source)
    ]


MIXED_SPEC = FaultSpec(
    duplicate_prob=0.05,
    drop_delete_prob=0.02,
    orphan_delete_prob=0.02,
    corrupt_prob=0.01,
    reorder_prob=0.05,
    reorder_skew=3,
    burst_stream="R",
    burst_start=50,
    burst_length=40,
    burst_copies=2,
    burst_linger=16,
)


def test_fault_plan_is_deterministic_per_seed():
    # Fresh workloads per run: stream generators are stateful.
    one = fingerprint(FaultPlan(MIXED_SPEC, seed=7), small_chain().updates(600))
    two = fingerprint(FaultPlan(MIXED_SPEC, seed=7), small_chain().updates(600))
    other = fingerprint(
        FaultPlan(MIXED_SPEC, seed=8), small_chain().updates(600)
    )
    assert one == two
    assert one != other


def test_fault_plan_renumbers_sequences_consecutively():
    workload = small_chain()
    plan = FaultPlan(MIXED_SPEC, seed=1)
    seqs = [u.seq for u in plan.updates(workload.updates(400))]
    assert seqs == list(range(1, len(seqs) + 1))
    assert plan.injected_total > 0


def test_fault_plan_counts_every_kind():
    workload = small_chain()
    plan = FaultPlan(MIXED_SPEC, seed=2)
    list(plan.updates(workload.updates(2000)))
    for kind in (
        "duplicates",
        "dropped_deletes",
        "orphans",
        "corrupted",
        "reordered",
        "burst_inserts",
        "burst_deletes",
    ):
        assert plan.counts[kind] > 0, kind


def test_fault_spec_validation():
    with pytest.raises(ResilienceError):
        FaultSpec(duplicate_prob=1.5).validate()
    with pytest.raises(ResilienceError):
        FaultSpec(reorder_prob=0.1, reorder_skew=0).validate()
    with pytest.raises(ResilienceError):
        FaultSpec(burst_length=-1).validate()


def test_fault_spec_overrides_coerce_and_reject():
    spec = FaultSpec().with_overrides(
        {"duplicate_prob": "0.2", "burst_copies": "3", "burst_stream": "R"}
    )
    assert spec.duplicate_prob == pytest.approx(0.2)
    assert spec.burst_copies == 3
    assert spec.burst_stream == "R"
    with pytest.raises(ResilienceError):
        FaultSpec().with_overrides({"bogus": "1"})
    with pytest.raises(ResilienceError):
        FaultSpec().with_overrides({"duplicate_prob": "not-a-number"})


# ----------------------------------------------------------------------
# Ingress guard
# ----------------------------------------------------------------------
def guarded_executor():
    workload = small_chain()
    executor = MJoinExecutor(
        workload.graph, indexed_attributes=workload.indexed_attributes
    )
    controller = ResilienceController(
        executor, ResilienceConfig(shedding=None, auditor=None)
    )
    executor.resilience = controller
    return executor, controller


def test_guard_quarantines_duplicate_insert_and_extra_delete():
    executor, controller = guarded_executor()
    ins = Update("R", Row(1, (5,)), Sign.INSERT, 1)
    executor.process(ins)
    executor.process(ins)  # the duplicate: quarantined
    assert controller.guard.by_reason == {DUPLICATE_INSERT: 1}
    assert executor.relations["R"].live_row(1) is not None

    dele = Update("R", Row(1, (5,)), Sign.DELETE, 2)
    executor.process(dele)  # pairs with the quarantined duplicate
    executor.process(dele)  # the real delete: admitted
    assert controller.guard.by_reason[DUPLICATE_DELETE] == 1
    assert executor.relations["R"].live_row(1) is None
    assert controller.quarantined == 2


def test_guard_quarantines_malformed_updates():
    executor, controller = guarded_executor()
    cases = [
        (Update("Z", Row(1, (5,)), Sign.INSERT, 1), UNKNOWN_RELATION),
        (Update("S", Row(2, (5,)), Sign.INSERT, 2), ARITY_MISMATCH),
        (Update("R", Row(3, (CORRUPT,)), Sign.INSERT, 3), CORRUPT_VALUE),
        (
            Update("R", Row(4, (float("nan"),)), Sign.INSERT, 4),
            CORRUPT_VALUE,
        ),
        (Update("R", Row(99, (5,)), Sign.DELETE, 5), ORPHAN_DELETE),
    ]
    for update, reason in cases:
        assert executor.process(update) == []
        assert controller.guard.by_reason.get(reason, 0) >= 1, reason
    assert controller.quarantined == len(cases)
    assert len(executor.relations["R"]) == 0
    # Every quarantine landed in the decision log as well.
    actions = [
        r.action for r in executor.ctx.obs.decisions.entries()
    ]
    assert actions.count(QUARANTINE) == len(cases)


def test_dead_letter_buffer_is_bounded():
    buffer = DeadLetterBuffer(capacity=2)
    for i in range(5):
        buffer.add(QuarantinedUpdate("R", i, "INSERT", ORPHAN_DELETE, i))
    assert len(buffer) == 2
    assert buffer.total == 5
    assert buffer.dropped == 3
    assert [e.rid for e in buffer.entries()] == [3, 4]
    with pytest.raises(ValueError):
        DeadLetterBuffer(capacity=0)


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
def test_shedder_enters_and_leaves_degraded_mode():
    ctx = ExecContext()
    shedder = LoadShedder(
        SheddingConfig(
            budget_us_per_update=5.0,
            window_updates=2,
            shed_fraction=1.0,
            recover_windows=1,
        )
    )
    for _ in range(2):  # expensive window: 20µs/update
        ctx.clock.charge(20.0)
        shedder.after_update(ctx)
    assert shedder.degraded
    assert shedder.shed_events == 1

    insert = Update("R", Row(1, (5,)), Sign.INSERT, 1)
    assert shedder.should_shed(insert, ctx)
    assert shedder.shed_by_stream == {"R": 1}
    # The shed insert's paired delete vanishes too — even after recovery.
    for _ in range(2):  # cheap window: 0µs/update
        shedder.after_update(ctx)
    assert not shedder.degraded
    dele = Update("R", Row(1, (5,)), Sign.DELETE, 2)
    assert shedder.should_shed(dele, ctx)
    assert not shedder.should_shed(dele, ctx)  # only once per shed rid
    actions = [r.action for r in ctx.obs.decisions.entries()]
    assert actions == [SHED_START, SHED_STOP]


def test_run_with_series_reports_degraded_windows():
    workload = small_chain()
    plan = static_plan(
        workload,
        orders=CHAIN_ORDERS,
        candidate_ids=[],
        resilience=ResilienceConfig(
            shedding=SheddingConfig(
                budget_us_per_update=0.001, window_updates=50
            ),
            auditor=None,
        ),
    )
    series = run_with_series(
        plan, workload.updates(1200), sample_every_updates=200
    )
    assert any(p.degraded for p in series)
    assert sum(p.shed_updates for p in series) > 0
    assert plan.resilience.shed_total > 0


# ----------------------------------------------------------------------
# Coherence auditor
# ----------------------------------------------------------------------
def test_auditor_detaches_poisoned_cache_and_rebuilds():
    workload = small_chain()
    plan = static_plan(
        workload,
        orders=CHAIN_ORDERS,
        candidate_ids=[FORCED_CACHE],
        resilience=ResilienceConfig(
            shedding=None,
            auditor=AuditorConfig(
                audit_every_updates=50,
                entries_per_audit=16,
                rebuild_after_updates=100,
            ),
        ),
    )
    updates = iter(workload.updates(6000))
    wired = plan.wiring.wired[FORCED_CACHE]

    def first_live_entry():
        for _key, value in wired.cache.store.entries():
            if value:  # an entry's composite dict empties on deletes
                return value
        return None

    value = first_live_entry()
    while value is None:
        plan.process(next(updates))
        value = first_live_entry()

    # Poison one cached row: a rid no generator ever assigns.
    identity, composite = next(iter(value.items()))
    rows = {r: composite.row(r) for r in composite.relations()}
    relation = wired.cache.segment[0]
    rows[relation] = Row(999_999_983, rows[relation].values)
    value[identity] = type(composite)(rows)

    auditor = plan.resilience.auditor
    for _ in range(200):
        plan.process(next(updates))
        if auditor.detached:
            break
    assert auditor.detached == 1
    assert FORCED_CACHE not in plan.wiring.wired

    for _ in range(300):
        plan.process(next(updates))
        if auditor.rebuilt:
            break
    assert auditor.rebuilt == 1
    assert FORCED_CACHE in plan.wiring.wired
    actions = [r.action for r in plan.ctx.obs.decisions.entries()]
    assert COHERENCE_DETACH in actions
    assert COHERENCE_REBUILD in actions


def test_auditor_passes_healthy_caches():
    workload = small_chain()
    plan = static_plan(
        workload,
        orders=CHAIN_ORDERS,
        candidate_ids=[FORCED_CACHE],
        resilience=ResilienceConfig(
            shedding=None,
            auditor=AuditorConfig(audit_every_updates=50),
        ),
    )
    plan.run(workload.updates(1500))
    auditor = plan.resilience.auditor
    assert auditor.entries_checked > 0
    assert auditor.detached == 0
    assert FORCED_CACHE in plan.wiring.wired


# ----------------------------------------------------------------------
# Deficit scheduler: zero-rate gaps (satellite fix)
# ----------------------------------------------------------------------
def test_scheduler_rides_out_zero_rate_gap():
    def rate_function(emitted):
        if 10 <= emitted < 25:
            return {"R": 0.0, "S": 0.0}
        return {"R": 1.0, "S": 1.0}

    scheduler = DeficitScheduler({"R": 1.0, "S": 1.0}, rate_function)
    names = list(scheduler.schedule(30))
    assert len(names) == 30
    assert set(names) == {"R", "S"}
    # The idle stretch advanced the schedule clock past the gap.
    assert scheduler.emitted > 30


def test_scheduler_raises_when_rates_never_recover():
    def rate_function(emitted):
        return {"R": 0.0} if emitted >= 5 else {"R": 1.0}

    scheduler = DeficitScheduler({"R": 1.0}, rate_function)
    scheduler.MAX_IDLE_TICKS = 100
    for _ in range(5):
        scheduler.next_stream()
    with pytest.raises(WorkloadError):
        scheduler.next_stream()


def test_scheduler_still_rejects_all_zero_base_rates():
    with pytest.raises(WorkloadError):
        DeficitScheduler({"R": 0.0, "S": 0.0})
