"""The multi-query subsystem's units: arbiter, directory, hub, facade.

Equivalence (byte-identity vs independent engines) lives in
``test_multi_equivalence.py``; this file covers the pieces — the global
memory arbiter's ledger arithmetic, inter-query sharing bookkeeping,
the stream hub's schema discipline, config rejections, query-attributed
observability, planner overlap analysis, and the shared-engine service
hosting (register / ingest / DELETE over a real socket).
"""

from functools import partial
from types import SimpleNamespace

import pytest

from repro.api import EngineConfig, MultiSession
from repro.core.acaching import ACachingConfig
from repro.core.memory import CacheDemand, PAGE_BYTES
from repro.core.reoptimizer import ReoptimizerConfig
from repro.errors import ConfigError, PlanError
from repro.multi import (
    GlobalMemoryArbiter,
    MultiQueryEngine,
    TenantQuota,
)
from repro.planner.enumeration import multi_query_overlap
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)
from repro.service.config import ServiceConfig as _SvcConfig
from repro.streams.workloads import fig9_workload, three_way_chain

STAR3 = partial(fig9_workload, 3, window=24)
CHAIN = partial(
    three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48
)

TUNED = EngineConfig(
    tuning=ACachingConfig(
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=120, profiling_phase_updates=60
        )
    )
)


def demand(candidate_id, net_benefit, bytes_):
    return CacheDemand(
        candidate=SimpleNamespace(candidate_id=candidate_id),
        net_benefit=net_benefit,
        expected_bytes=bytes_,
    )


def solo_token(query_id):
    return lambda candidate: (query_id, candidate.candidate_id)


def shared_token(candidate):
    return ("shared", candidate.candidate_id)


# ---------------------------------------------------------------------------
# GlobalMemoryArbiter
# ---------------------------------------------------------------------------

class TestArbiter:
    def test_budget_admits_by_benefit_per_byte_deterministically(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=2 * PAGE_BYTES)
        arbiter.register_tenant("q1")
        # Same priority: candidate id breaks the tie, stably.
        demands = [
            demand("c-b", 10.0, PAGE_BYTES),
            demand("c-a", 10.0, PAGE_BYTES),
            demand("c-c", 10.0, PAGE_BYTES),
        ]
        result = arbiter.admit("q1", demands, solo_token("q1"))
        admitted = [c.candidate_id for c in result.admitted]
        assert admitted == ["c-a", "c-b"]
        assert [c.candidate_id for c in result.rejected] == ["c-c"]
        assert arbiter.pages_in_use() == 2

    def test_shared_store_charged_once_globally(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=PAGE_BYTES)
        arbiter.register_tenant("q1")
        arbiter.register_tenant("q2")
        first = arbiter.admit(
            "q1", [demand("c1", 5.0, PAGE_BYTES)], shared_token
        )
        assert first.pages_used == 1
        # The whole budget is spent, but joining an existing store is
        # free — q2's identical demand admits at zero incremental pages.
        second = arbiter.admit(
            "q2", [demand("c1", 5.0, PAGE_BYTES)], shared_token
        )
        assert [c.candidate_id for c in second.admitted] == ["c1"]
        assert second.pages_used == 0
        assert arbiter.pages_in_use() == 1

    def test_release_recharges_shared_grant_to_min_survivor(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=4 * PAGE_BYTES)
        for qid in ("q1", "q2", "q3"):
            arbiter.register_tenant(qid)
            arbiter.admit(qid, [demand("c1", 5.0, PAGE_BYTES)], shared_token)
        assert arbiter.pages_held("q1") == 1          # creator pays
        arbiter.release("q1")
        assert arbiter.pages_held("q1") == 0
        assert arbiter.pages_held("q2") == 1          # min(q2, q3)
        assert arbiter.pages_in_use() == 1
        arbiter.release("q2")
        arbiter.release("q3")
        assert arbiter.pages_in_use() == 0

    def test_minimum_reservations_block_other_tenants(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=2 * PAGE_BYTES)
        arbiter.register_tenant("greedy")
        arbiter.register_tenant(
            "reserved", TenantQuota(min_bytes=PAGE_BYTES)
        )
        result = arbiter.admit(
            "greedy",
            [demand("c1", 9.0, PAGE_BYTES), demand("c2", 8.0, PAGE_BYTES)],
            solo_token("greedy"),
        )
        # One page must stay free for "reserved"'s unmet minimum.
        assert [c.candidate_id for c in result.admitted] == ["c1"]
        reserved = arbiter.admit(
            "reserved", [demand("c3", 1.0, PAGE_BYTES)],
            solo_token("reserved"),
        )
        assert [c.candidate_id for c in reserved.admitted] == ["c3"]

    def test_maximum_caps_a_tenants_holdings(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=8 * PAGE_BYTES)
        arbiter.register_tenant(
            "capped", TenantQuota(max_bytes=PAGE_BYTES)
        )
        result = arbiter.admit(
            "capped",
            [demand("c1", 9.0, PAGE_BYTES), demand("c2", 8.0, PAGE_BYTES)],
            solo_token("capped"),
        )
        assert [c.candidate_id for c in result.admitted] == ["c1"]
        assert [c.candidate_id for c in result.rejected] == ["c2"]

    def test_minima_exceeding_budget_rejected_at_registration(self):
        arbiter = GlobalMemoryArbiter(budget_bytes=2 * PAGE_BYTES)
        arbiter.register_tenant("q1", TenantQuota(min_bytes=2 * PAGE_BYTES))
        with pytest.raises(ConfigError):
            arbiter.register_tenant(
                "q2", TenantQuota(min_bytes=PAGE_BYTES)
            )

    def test_duplicate_tenant_and_unknown_tenant_rejected(self):
        arbiter = GlobalMemoryArbiter()
        arbiter.register_tenant("q1")
        with pytest.raises(ConfigError):
            arbiter.register_tenant("q1")
        with pytest.raises(ConfigError):
            arbiter.admit("ghost", [], solo_token("ghost"))

    def test_invalid_quota_rejected(self):
        with pytest.raises(ConfigError):
            TenantQuota(min_bytes=-1)
        with pytest.raises(ConfigError):
            TenantQuota(min_bytes=100, max_bytes=50)


# ---------------------------------------------------------------------------
# MultiQueryEngine lifecycle and sharing bookkeeping
# ---------------------------------------------------------------------------

class TestEngineLifecycle:
    def test_rejects_incompatible_tenant_configs(self):
        engine = MultiQueryEngine()
        for bad in (
            EngineConfig(batch_size=4),
            EngineConfig(shards=2),
            EngineConfig(wal_dir="/tmp/nope"),
        ):
            with pytest.raises(ConfigError):
                engine.register("q1", STAR3(), bad)
        assert engine.queries() == []

    def test_rejects_duplicate_and_unknown_query_ids(self):
        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        with pytest.raises(ConfigError):
            engine.register("q1", STAR3(), TUNED)
        with pytest.raises(PlanError):
            engine.unregister("ghost")

    def test_schema_conflict_on_shared_stream_rejected(self):
        from repro.relations.predicates import JoinGraph
        from repro.streams.tuples import Schema

        engine = MultiQueryEngine()
        engine.register("star", STAR3(), TUNED)
        # A second graph reusing stream "R1" with different attributes
        # must be rejected — relation name is stream identity.
        conflicting = JoinGraph.parse(
            [Schema("R1", ("A", "B")), Schema("R2", ("B",))],
            ["R1.B = R2.B"],
        )
        with pytest.raises(PlanError):
            engine.hub.bind("chain", conflicting)
        # The failed bind left no partial interest behind.
        assert engine.hub.interested("R1") == {"star"}

    def test_unknown_stream_update_rejected(self):
        from repro.relations.relation import Row
        from repro.streams.events import Sign, Update

        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        with pytest.raises(PlanError):
            engine.process(Update("Z", Row(0, (1,)), Sign.INSERT, 0))

    def test_shared_stores_form_and_survive_member_removal(self):
        workload = STAR3()
        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        engine.register("q2", STAR3(), TUNED)
        # Cache selection needs ~2400 updates of statistics to engage.
        engine.run(workload.updates(2_400))
        snapshot = engine.snapshot()
        assert snapshot["shared_stores"] >= 1
        shared_bytes = snapshot["cache_bytes"]
        # Removing one user keeps every store the survivor references.
        engine.unregister("q1")
        assert engine.memory_in_use() == shared_bytes
        assert engine.directory.shared_store_count() == 0
        # Removing the last user releases everything.
        engine.unregister("q2")
        assert engine.memory_in_use() == 0
        assert len(engine.directory) == 0
        assert engine.arbiter.pages_in_use() == 0

    def test_share_caches_off_keeps_stores_private(self):
        workload = STAR3()
        engine = MultiQueryEngine(share_caches=False)
        engine.register("q1", STAR3(), TUNED)
        engine.register("q2", STAR3(), TUNED)
        engine.run(workload.updates(2_400))
        snapshot = engine.snapshot()
        assert snapshot["shared_stores"] == 0
        assert snapshot["cache_bytes"] > 0, (
            "caches must have attached for this check to mean anything"
        )

    def test_windows_shared_once_across_queries(self):
        workload = STAR3()
        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        engine.register("q2", STAR3(), TUNED)
        engine.run(workload.updates(200))
        # One Relation per stream, bound into both executors.
        for name, relation in engine.hub.relations.items():
            for qid in ("q1", "q2"):
                bound = engine.engine_for(qid).executor.relations[name]
                assert bound is relation


# ---------------------------------------------------------------------------
# query-attributed observability
# ---------------------------------------------------------------------------

class TestObservability:
    def test_decisions_carry_query_id(self):
        workload = STAR3()
        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        engine.register("q2", STAR3(), TUNED)
        engine.run(workload.updates(2_400))
        records = engine.decisions()
        assert records, "tuned run must produce adaptivity decisions"
        assert {r["query_id"] for r in records} == {"q1", "q2"}
        keys = [(r.get("t_us", 0.0), r.get("query_id", ""), r.get("seq", 0))
                for r in records]
        assert keys == sorted(keys)

    def test_prometheus_merge_labels_and_single_help_type(self):
        workload = STAR3()
        engine = MultiQueryEngine()
        engine.register("q1", STAR3(), TUNED)
        engine.register('q"2\\odd', STAR3(), TUNED)
        engine.run(workload.updates(300))
        text = engine.metrics_prometheus()
        assert 'query_id="q1"' in text
        # Label values escaped per the exposition format.
        assert 'query_id="q\\"2\\\\odd"' in text
        help_lines = [
            line for line in text.splitlines()
            if line.startswith("# HELP repro_updates_processed")
        ]
        assert len(help_lines) == 1


# ---------------------------------------------------------------------------
# planner overlap analysis
# ---------------------------------------------------------------------------

class TestOverlap:
    def test_identical_queries_share_every_prefix_invariant_store(self):
        report = multi_query_overlap({"q1": STAR3(), "q2": STAR3()})
        assert report["shared_store_count"] >= 1
        assert report["stores_saved"] >= 1
        for users in report["shareable_groups"].values():
            assert set(users) == {"q1", "q2"}

    def test_disjoint_queries_share_nothing(self):
        report = multi_query_overlap({"star": STAR3(), "chain": CHAIN()})
        assert report["shareable_groups"] == {}
        assert report["stores_saved"] == 0


# ---------------------------------------------------------------------------
# MultiSession facade
# ---------------------------------------------------------------------------

class TestMultiSession:
    def test_run_infers_single_shared_workload(self):
        session = MultiSession()
        workload = STAR3()
        session.register("q1", workload, TUNED)
        session.register("q2", workload, TUNED)
        outputs = session.run(arrivals=150)
        assert set(outputs) == {"q1", "q2"}
        snapshot = session.snapshot()
        assert snapshot["queries"] == ["q1", "q2"]
        session.unregister("q2")
        assert session.queries() == ["q1"]

    def test_run_with_distinct_workloads_needs_explicit_workload(self):
        session = MultiSession()
        session.register("q1", STAR3, TUNED)
        session.register("q2", STAR3, TUNED)  # distinct instances
        with pytest.raises(PlanError):
            session.run(arrivals=50)

    def test_tenancy_fields_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(tenant_min_bytes=-1)
        with pytest.raises(ConfigError):
            EngineConfig(tenant_min_bytes=100, tenant_max_bytes=50)


# ---------------------------------------------------------------------------
# shared-engine service hosting
# ---------------------------------------------------------------------------

class TestSharedService:
    def test_shared_engine_config_validation(self):
        with pytest.raises(ConfigError):
            _SvcConfig(shared_engine=True, wal_root="/tmp/x")
        with pytest.raises(ConfigError):
            _SvcConfig(
                shared_engine=True,
                engine=EngineConfig(batch_size=4),
            )
        with pytest.raises(ConfigError):
            _SvcConfig(
                shared_engine=True, engine=EngineConfig(shards=2)
            )

    def test_register_ingest_unregister_on_shared_engine(self):
        import time

        thread = ServiceThread(ServiceConfig(shared_engine=True))
        thread.start()
        try:
            client = ServiceClient(thread.base_url)
            star = {"kind": "star", "params": {"n": 3, "window": 24}}
            client.register("q1", star)
            client.register("q2", star)
            for i in range(40):
                status, _ = client.ingest(
                    "q1",
                    [("R1", [i % 5]), ("R2", [i % 5]), ("R3", [i % 5])],
                    tenant="t1",
                )
                assert status == 202
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if client.status("q2")["processed_seq"] >= 0:
                    break
                time.sleep(0.02)
            # Both members see the shared stream's results.
            r1 = client.results("q1", since_seq=-1, limit=10_000)
            r2 = client.results("q2", since_seq=-1, limit=10_000)
            assert r1["entries"] and r1["entries"] == r2["entries"]
            # The exposition merges the engine's query_id-labeled series.
            assert 'query_id="q1"' in client.metrics_text()
            payload = client.unregister("q2")
            assert payload == {"query": "q2", "unregistered": True}
            status = client.status("q1")
            assert status["shared_engine"] is True
            # Ingest keeps working after a member is removed.
            code, _ = client.ingest("q1", [("R1", [7])], tenant="t1")
            assert code == 202
        finally:
            thread.stop()

    def test_unregister_rejected_on_isolated_service(self):
        from repro.errors import ServiceError

        thread = ServiceThread(ServiceConfig())
        thread.start()
        try:
            client = ServiceClient(thread.base_url)
            chain = {
                "kind": "chain",
                "params": {"window_r": 32, "window_s": 32, "window_t": 32},
            }
            client.register("q1", chain)
            with pytest.raises(ServiceError):
                client.unregister("q1")
        finally:
            thread.stop()
