"""Unit tests for the pipeline join operator ./ij."""

import pytest

from repro.errors import PlanError
from repro.operators.base import ExecContext
from repro.operators.join_op import JoinOperator
from repro.relations.predicates import JoinGraph
from repro.relations.relation import Relation
from repro.streams.tuples import CompositeTuple, RowFactory, Schema
from repro.streams.workloads import star_graph


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


@pytest.fixture
def ctx():
    return ExecContext()


@pytest.fixture
def rows():
    return RowFactory()


class TestIndexedJoin:
    def test_matches_by_index(self, ctx, rows):
        graph = chain_graph()
        relation = Relation(graph.schemas["S"], ("A",))
        relation.insert(rows.make((1, 10)))
        relation.insert(rows.make((1, 11)))
        relation.insert(rows.make((2, 12)))
        op = JoinOperator(graph, prior=["R"], target="S").bind(relation)
        composite = CompositeTuple.of("R", rows.make((1,)))
        out = op.apply([composite], ctx)
        assert len(out) == 2
        assert all(o.value("S", 0) == 1 for o in out)
        assert ctx.clock.now_us > 0  # probes were charged

    def test_unbound_operator_raises(self, ctx, rows):
        graph = chain_graph()
        op = JoinOperator(graph, prior=["R"], target="S")
        with pytest.raises(PlanError, match="unbound"):
            op.apply([CompositeTuple.of("R", rows.make((1,)))], ctx)

    def test_bind_wrong_relation(self, rows):
        graph = chain_graph()
        op = JoinOperator(graph, prior=["R"], target="S")
        with pytest.raises(PlanError, match="bound"):
            op.bind(Relation(graph.schemas["T"], ()))

    def test_residual_predicates_verified(self, ctx, rows):
        # Star graph: joining R3 to prior {R1, R2} has two predicates;
        # one is used via the index, the other verified as a residual.
        graph = star_graph(3)
        relation = Relation(graph.schemas["R3"], ("A",))
        relation.insert(rows.make((5,)))
        op = JoinOperator(graph, prior=["R1", "R2"], target="R3").bind(
            relation
        )
        assert op.predicate_count == 2
        matching = CompositeTuple.of("R1", rows.make((5,))).extended(
            "R2", rows.make((5,))
        )
        assert len(op.apply([matching], ctx)) == 1
        # Residual mismatch: R1.A=5 matches the index but R2.A=6 fails.
        mismatched = CompositeTuple.of("R1", rows.make((5,))).extended(
            "R2", rows.make((6,))
        )
        assert op.apply([mismatched], ctx) == []


class TestScanJoin:
    def test_scan_without_index(self, ctx, rows):
        graph = chain_graph()
        relation = Relation(graph.schemas["S"], ())  # no indexes at all
        relation.insert(rows.make((1, 10)))
        relation.insert(rows.make((2, 11)))
        op = JoinOperator(graph, prior=["R"], target="S").bind(relation)
        composite = CompositeTuple.of("R", rows.make((1,)))
        out = op.apply([composite], ctx)
        assert len(out) == 1

    def test_scan_cost_scales_with_relation(self, rows):
        graph = chain_graph()
        small = Relation(graph.schemas["S"], ())
        large = Relation(graph.schemas["S"], ())
        for i in range(10):
            small.insert(rows.make((99, i)))
        for i in range(1000):
            large.insert(rows.make((99, i)))
        probe = CompositeTuple.of("R", rows.make((1,)))
        ctx_small, ctx_large = ExecContext(), ExecContext()
        JoinOperator(graph, ["R"], "S").bind(small).apply(
            [probe], ctx_small
        )
        JoinOperator(graph, ["R"], "S").bind(large).apply(
            [probe], ctx_large
        )
        assert ctx_large.clock.now_us > 10 * ctx_small.clock.now_us

    def test_cross_product_when_unconnected(self, ctx, rows):
        graph = chain_graph()
        relation = Relation(graph.schemas["T"], ("B",))
        relation.insert(rows.make((7,)))
        relation.insert(rows.make((8,)))
        # R and T share no predicate: the join degenerates to a product.
        op = JoinOperator(graph, prior=["R"], target="T").bind(relation)
        assert op.is_cross_product()
        out = op.apply([CompositeTuple.of("R", rows.make((1,)))], ctx)
        assert len(out) == 2

    def test_match_rows_counts_without_extending(self, ctx, rows):
        graph = chain_graph()
        relation = Relation(graph.schemas["S"], ("A",))
        relation.insert(rows.make((1, 10)))
        op = JoinOperator(graph, prior=["R"], target="S").bind(relation)
        matches = op.match_rows(CompositeTuple.of("R", rows.make((1,))), ctx)
        assert len(matches) == 1
        assert matches[0].values == (1, 10)
