"""Tests for the offline cache-selection algorithms (Section 4.4 / App B)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateCache, enumerate_prefix_candidates
from repro.core.exhaustive import select_exhaustive
from repro.core.greedy import select_greedy
from repro.core.lp_rounding import select_lp_rounding, solve_relaxation
from repro.core.selection import SelectionProblem, select
from repro.core.tree_dp import select_tree_optimal
from repro.errors import PlanError
from repro.streams.workloads import star_graph

FIGURE5_ORDERS = {
    "R1": ("R2", "R3", "R4", "R5", "R6"),
    "R2": ("R1", "R3", "R5", "R4", "R6"),
    "R3": ("R2", "R1", "R4", "R5", "R6"),
    "R4": ("R5", "R1", "R2", "R3", "R6"),
    "R5": ("R4", "R2", "R3", "R1", "R6"),
    "R6": ("R2", "R1", "R4", "R5", "R3"),
}


def make_problem(seed=0, owners_orders=FIGURE5_ORDERS, n=6):
    """A SelectionProblem over the Figure 5 candidates with seeded costs.

    Instances respect the Section 4.4 identity tying the two objective
    formulations together: ``benefit(C) = Σ covered op costs − proc(C)``,
    so maximizing net benefit and minimizing total cost agree.
    """
    rng = random.Random(seed)
    graph = star_graph(n)
    candidates = enumerate_prefix_candidates(graph, owners_orders)
    operator_cost = {}
    for owner, order in owners_orders.items():
        for slot in range(len(order)):
            operator_cost[(owner, slot)] = rng.uniform(1, 30)
    benefit, proc = {}, {}
    for candidate in candidates:
        segment_work = sum(
            operator_cost[slot] for slot in candidate.covered_slots
        )
        cache_proc = rng.uniform(0.1, 1.5) * segment_work
        proc[candidate.candidate_id] = cache_proc
        benefit[candidate.candidate_id] = segment_work - cache_proc
    group_cost = {}
    for candidate in candidates:
        group_cost.setdefault(candidate.share_token, rng.uniform(0, 40))
    return SelectionProblem(
        candidates=candidates,
        benefit=benefit,
        proc=proc,
        group_cost=group_cost,
        operator_cost=operator_cost,
    )


def total_cost(problem, selected):
    """Σ uncovered op costs + Σ proc + Σ group costs (Section 4.4)."""
    covered = set()
    for candidate in selected:
        covered.update(candidate.covered_slots)
    value = sum(
        cost
        for slot, cost in problem.operator_cost.items()
        if slot not in covered
    )
    value += sum(problem.proc[c.candidate_id] for c in selected)
    value += sum(
        problem.group_cost[token]
        for token in {c.share_token for c in selected}
    )
    return value


def brute_force_best(problem):
    """Reference optimum by scanning all conflict-free subsets."""
    best_value, best = 0.0, []
    candidates = problem.candidates
    for size in range(len(candidates) + 1):
        for subset in itertools.combinations(candidates, size):
            if any(
                a.conflicts_with(b)
                for i, a in enumerate(subset)
                for b in subset[i + 1 :]
            ):
                continue
            value = problem.subset_value(list(subset))
            if value > best_value:
                best_value, best = value, list(subset)
    return best_value, best


class TestExhaustive:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        problem = make_problem(seed)
        selected = select_exhaustive(problem)
        best_value, _ = brute_force_best(problem)
        assert problem.subset_value(selected) == pytest.approx(best_value)

    def test_empty_when_nothing_profitable(self):
        problem = make_problem(3)
        for cid in problem.benefit:
            problem.benefit[cid] = 0.0
        for token in problem.group_cost:
            problem.group_cost[token] = 10.0
        assert select_exhaustive(problem) == []

    def test_sharing_pays_cost_once(self):
        problem = make_problem(5)
        # Give the shared {R1,R2} group members big benefits and a cost
        # larger than any single benefit but smaller than their sum.
        shared_members = [
            c
            for c in problem.candidates
            if frozenset(c.segment) == frozenset({"R1", "R2"})
        ]
        assert len(shared_members) >= 2
        token = shared_members[0].share_token
        for c in problem.candidates:
            problem.benefit[c.candidate_id] = 0.0
        for t in problem.group_cost:
            problem.group_cost[t] = 1000.0
        for c in shared_members:
            problem.benefit[c.candidate_id] = 40.0
        problem.group_cost[token] = 60.0  # > 40, < sum of members
        selected = select_exhaustive(problem)
        assert {c.candidate_id for c in selected} == {
            c.candidate_id for c in shared_members
        }


class TestTreeDP:
    def test_requires_no_sharing(self):
        problem = make_problem(0)
        if problem.has_sharing():
            with pytest.raises(PlanError):
                select_tree_optimal(problem)

    def test_optimal_on_single_pipeline(self):
        # ∆R6 alone: nested candidates {R1,R2} ⊂ {R1..R5} ⊃ {R4,R5}.
        problem = make_problem(1)
        r6_only = [c for c in problem.candidates if c.owner == "R6"]
        sub = SelectionProblem(
            candidates=r6_only,
            benefit=problem.benefit,
            proc=problem.proc,
            group_cost=problem.group_cost,
            operator_cost=problem.operator_cost,
        )
        selected = select_tree_optimal(sub)
        best_value, _ = brute_force_best(sub)
        assert sub.subset_value(selected) == pytest.approx(best_value)

    def test_prefers_children_when_they_sum_higher(self):
        problem = make_problem(2)
        r6 = [c for c in problem.candidates if c.owner == "R6"]
        big = next(c for c in r6 if len(c.segment) == 5)
        small = [c for c in r6 if len(c.segment) == 2]
        for c in problem.candidates:
            problem.benefit[c.candidate_id] = 0.0
        for t in problem.group_cost:
            problem.group_cost[t] = 0.0
        problem.benefit[big.candidate_id] = 50.0
        for c in small:
            problem.benefit[c.candidate_id] = 30.0
        sub = SelectionProblem(
            candidates=r6,
            benefit=problem.benefit,
            proc=problem.proc,
            group_cost=problem.group_cost,
            operator_cost=problem.operator_cost,
        )
        selected = select_tree_optimal(sub)
        assert {c.candidate_id for c in selected} == {
            c.candidate_id for c in small
        }


class TestGreedy:
    @pytest.mark.parametrize("seed", range(8))
    def test_feasible_and_competitive(self, seed):
        problem = make_problem(seed)
        selected = select_greedy(problem)
        problem.validate_compatible(selected)
        assert problem.subset_value(selected) >= 0.0
        # Theorem 4.3's guarantee is on total cost: O(log n) of optimal.
        import math

        _best_value, best = brute_force_best(problem)
        optimum_cost = total_cost(problem, best)
        bound = (1 + math.log2(len(problem.operator_cost))) * optimum_cost
        assert total_cost(problem, selected) <= bound

    def test_covers_with_operators_when_caches_bad(self):
        problem = make_problem(4)
        for cid in problem.proc:
            problem.proc[cid] = 1e9  # caches are terrible
        for cid in problem.benefit:
            problem.benefit[cid] = -1e9
        assert select_greedy(problem) == []


class TestLPRounding:
    def test_relaxation_covers_each_operator(self):
        pytest.importorskip("scipy")
        problem = make_problem(0)
        fractional = solve_relaxation(problem)
        assert all(0.0 <= x <= 1.0 + 1e-9 for x in fractional.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_feasible(self, seed):
        pytest.importorskip("scipy")
        problem = make_problem(seed)
        selected = select_lp_rounding(problem, seed=seed)
        problem.validate_compatible(selected)
        assert problem.subset_value(selected) >= 0.0


class TestDispatch:
    def test_auto_uses_tree_without_sharing(self):
        problem = make_problem(0)
        no_sharing = [
            c
            for c in problem.candidates
            if len(
                [
                    o
                    for o in problem.candidates
                    if o.share_token == c.share_token
                ]
            )
            == 1
        ]
        sub = SelectionProblem(
            candidates=no_sharing,
            benefit=problem.benefit,
            proc=problem.proc,
            group_cost=problem.group_cost,
            operator_cost=problem.operator_cost,
        )
        selected = select(sub, method="auto")
        best_value, _ = brute_force_best(sub)
        assert sub.subset_value(selected) == pytest.approx(best_value)

    def test_unknown_method(self):
        with pytest.raises(PlanError):
            select(make_problem(0), method="quantum")

    def test_empty_problem(self):
        problem = make_problem(0)
        problem.candidates = []
        assert select(problem) == []


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_exhaustive_is_always_optimal(seed):
    """Property: branch-and-bound equals brute force on random costs."""
    problem = make_problem(seed)
    selected = select_exhaustive(problem)
    best_value, _ = brute_force_best(problem)
    assert problem.subset_value(selected) == pytest.approx(best_value)
    problem.validate_compatible(selected)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_greedy_never_selects_conflicts(seed):
    problem = make_problem(seed)
    problem.validate_compatible(select_greedy(problem))
