"""Service admission control and backpressure, unit level.

The token bucket and the degradation ladder both take an injectable
clock, so every test here is deterministic: time only moves when the
test says so.
"""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.obs.decisions import DecisionLog, TIER_CHANGE
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.backpressure import (
    DegradationController,
    IngressQueue,
    TIER_NORMAL,
    TIER_PAUSE_SUBSCRIPTIONS,
    TIER_REJECT_INGEST,
    TIER_SHED_DELTAS,
)
from repro.service.config import ServiceConfig


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
def test_bucket_burst_then_throttles_with_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
    assert bucket.take(5) == 0.0          # the whole burst, immediately
    delay = bucket.take(1)
    assert delay == pytest.approx(0.1)    # one token at 10/s
    clock.now += 0.1
    assert bucket.take(1) == 0.0          # refilled exactly that token


def test_bucket_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=10.0, clock=clock)
    clock.now += 60.0                     # a minute idle
    assert bucket.take(10) == 0.0
    assert bucket.take(1) > 0.0           # nothing banked past the burst


def test_bucket_degraded_rate_factor_doubles_cost():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
    # rate_factor 0.5: each update costs double, effective refill halves.
    assert bucket.take(5, rate_factor=0.5) == 0.0   # costs the full burst
    delay = bucket.take(1, rate_factor=0.5)
    # deficit of 2 tokens at an effective 5 tokens/s
    assert delay == pytest.approx(0.4)


def test_admission_controller_is_per_tenant_and_feels_degradation():
    clock = FakeClock()
    admission = AdmissionController(
        rate=10.0, burst=5.0, degraded_rate_factor=0.5, clock=clock
    )
    assert admission.admit("a", 5) == 0.0
    assert admission.admit("b", 5) == 0.0   # separate bucket
    assert admission.admit("a", 1) > 0.0
    admission.note_engine_degraded(True)
    # Degraded: tenant b's remaining capacity is halved.
    clock.now += 0.25                        # 2.5 tokens at nominal rate
    assert admission.admit("b", 2) > 0.0     # costs 4 under 0.5 factor
    admission.note_engine_degraded(False)
    summary = admission.summary()
    assert summary["tenants"] == 2
    assert summary["rejections"] >= 2


# ----------------------------------------------------------------------
# Ingress queue
# ----------------------------------------------------------------------
def test_queue_reserve_put_release_accounting():
    queue = IngressQueue(10)
    assert queue.reserve(6)
    assert not queue.reserve(5)        # 6 + 5 > 10
    queue.cancel_reservation(2)        # worst-case shrank to 4 actual
    assert queue.reserve(6)            # 4 + 6 = 10, exactly full
    assert queue.depth_fraction == pytest.approx(1.0)
    queue.put("batch-a")
    queue.release(4)
    assert queue.depth_fraction == pytest.approx(0.6)


def test_queue_get_yields_in_fifo_order():
    async def scenario():
        queue = IngressQueue(10)
        queue.reserve(2)
        queue.put("a")
        queue.put("b")
        return [await queue.get(), await queue.get()]

    assert asyncio.run(scenario()) == ["a", "b"]


def test_queue_get_waits_until_put():
    async def scenario():
        queue = IngressQueue(10)

        async def producer():
            await asyncio.sleep(0.01)
            queue.reserve(1)
            queue.put("late")

        task = asyncio.ensure_future(producer())
        value = await asyncio.wait_for(queue.get(), timeout=2.0)
        await task
        return value

    assert asyncio.run(scenario()) == "late"


def test_queue_oldest_lag_tracks_head_batch():
    clock = FakeClock()
    queue = IngressQueue(10, clock=clock)
    assert queue.oldest_lag_s() == 0.0
    queue.reserve(1)
    queue.put("a")
    clock.now += 3.0
    assert queue.oldest_lag_s() == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def _controller(log=None):
    clock = FakeClock()
    config = ServiceConfig(
        shed_depth_fraction=0.5,
        pause_depth_fraction=0.75,
        reject_depth_fraction=0.95,
        shed_lag_s=1.0,
        pause_lag_s=4.0,
        reject_lag_s=10.0,
        recover_fraction=0.5,
    )
    return DegradationController(config, decision_log=log, clock=clock)


def test_ladder_engages_on_worst_signal():
    tiers = _controller()
    assert tiers.update(0.1, 0.0) == TIER_NORMAL
    assert tiers.update(0.6, 0.0) == TIER_SHED_DELTAS
    assert tiers.update(0.6, 5.0) == TIER_PAUSE_SUBSCRIPTIONS  # lag worse
    assert tiers.update(0.96, 0.0) == TIER_REJECT_INGEST
    assert tiers.rejecting_ingest


def test_ladder_recovers_one_step_at_a_time_with_hysteresis():
    tiers = _controller()
    tiers.update(0.96, 12.0)
    assert tiers.tier == TIER_REJECT_INGEST
    # Both signals must fall under recover_fraction x the *current*
    # tier's engage threshold before a step down; 0.6 is not enough
    # (0.5 x 0.95 = 0.475).
    assert tiers.update(0.6, 0.0) == TIER_REJECT_INGEST
    assert tiers.update(0.4, 0.0) == TIER_PAUSE_SUBSCRIPTIONS
    # One step per evaluation, even from idle signals.
    assert tiers.update(0.0, 0.0) == TIER_SHED_DELTAS
    assert tiers.update(0.0, 0.0) == TIER_NORMAL
    assert not tiers.shedding_deltas


def test_ladder_records_tier_change_decisions():
    log = DecisionLog()
    tiers = _controller(log=log)
    tiers.update(0.8, 0.0)
    tiers.update(0.0, 0.0)
    actions = [entry.action for entry in log.entries()]
    assert actions == [TIER_CHANGE, TIER_CHANGE]
    reasons = [entry.reason for entry in log.entries()]
    assert "normal->pause_subscriptions" in reasons[0]
    assert "pause_subscriptions->shed_deltas" in reasons[1]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(queue_capacity_updates=0), "queue_capacity_updates"),
        (dict(max_batch_updates=0), "max_batch_updates"),
        (dict(tenant_rate=0), "tenant_rate"),
        (dict(tenant_burst=-1), "tenant_burst"),
        (dict(recover_fraction=1.5), "recover_fraction"),
        (
            dict(shed_depth_fraction=0.9, pause_depth_fraction=0.5),
            "depth fractions must be non-decreasing",
        ),
    ],
)
def test_service_config_validation(kwargs, needle):
    with pytest.raises(ConfigError) as err:
        ServiceConfig(**kwargs)
    assert needle in str(err.value)
