"""Tests for join-tree enumeration and the XJoin executor."""

import pytest

from repro.errors import PlanError
from repro.relations.predicates import JoinGraph
from repro.streams.tuples import Schema
from repro.streams.workloads import star_graph, three_way_chain
from repro.xjoin.executor import SubresultStore, XJoinExecutor
from repro.xjoin.tree import (
    Inner,
    Leaf,
    canonical,
    enumerate_trees,
    inner_nodes,
    leaves,
    left_deep,
)


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


class TestTreeStructure:
    def test_left_deep(self):
        tree = left_deep(["R", "S", "T"])
        assert isinstance(tree, Inner)
        assert tree.relations == {"R", "S", "T"}
        assert [leaf.relation for leaf in leaves(tree)] == ["R", "S", "T"]

    def test_left_deep_empty(self):
        with pytest.raises(PlanError):
            left_deep([])

    def test_inner_nodes_children_first(self):
        tree = left_deep(["R", "S", "T"])
        nodes = inner_nodes(tree)
        assert len(nodes) == 2
        assert nodes[-1] is tree

    def test_canonical_ignores_child_order(self):
        a = Inner(Leaf("R"), Leaf("S"))
        b = Inner(Leaf("S"), Leaf("R"))
        assert canonical(a) == canonical(b)


class TestEnumeration:
    def test_chain_has_two_trees(self):
        # R-S-T chain: only (R⋈S)⋈T and R⋈(S⋈T); R⋈T is a cross product.
        trees = enumerate_trees(chain_graph())
        assert len(trees) == 2

    def test_star_has_all_fifteen(self):
        # All 15 unordered binary trees over 4 leaves connect in a star
        # (transitive closure equates every pair on A).
        trees = enumerate_trees(star_graph(4))
        assert len(trees) == 15

    def test_trees_cover_all_relations(self):
        for tree in enumerate_trees(star_graph(4)):
            assert tree.relations == {"R1", "R2", "R3", "R4"}

    def test_no_duplicate_shapes(self):
        trees = enumerate_trees(star_graph(4))
        shapes = {canonical(t) for t in trees}
        assert len(shapes) == len(trees)


class TestSubresultStore:
    def test_add_lookup_remove(self):
        from repro.streams.tuples import CompositeTuple, RowFactory

        rows = RowFactory()
        store = SubresultStore(["R", "S"], indexed_slots=[("S", 1)])
        s = rows.make((1, 7))
        r = rows.make((1,))
        composite = CompositeTuple.of("R", r).extended("S", s)
        store.add(composite)
        assert store.lookup("S", 1, 7) == [composite]
        assert store.lookup("S", 1, 8) == []
        assert len(store) == 1
        assert store.memory_bytes > 0
        store.remove(composite)
        assert store.lookup("S", 1, 7) == []
        assert store.memory_bytes == 0

    def test_unindexed_lookup_returns_none(self):
        store = SubresultStore(["R"], indexed_slots=[])
        assert store.lookup("R", 0, 5) is None

    def test_remove_absent_is_noop(self):
        from repro.streams.tuples import CompositeTuple, RowFactory

        rows = RowFactory()
        store = SubresultStore(["R"], indexed_slots=[("R", 0)])
        store.remove(CompositeTuple.of("R", rows.make((1,))))
        assert len(store) == 0


class TestXJoinExecutor:
    def test_tree_must_cover_relations(self):
        workload = three_way_chain()
        with pytest.raises(PlanError):
            XJoinExecutor(workload.graph, left_deep(["R", "S"]))

    @pytest.mark.parametrize("order", [["R", "S", "T"], ["T", "S", "R"]])
    def test_matches_mjoin_outputs(self, order):
        from repro.mjoin.executor import MJoinExecutor

        def norm(outputs):
            return sorted(
                (
                    int(o.sign),
                    tuple(
                        sorted(
                            (rel, o.composite.row(rel).rid)
                            for rel in o.composite
                        )
                    ),
                )
                for o in outputs
            )

        workload = three_way_chain(t_multiplicity=2.0, window_r=16, window_s=16)
        xjoin = XJoinExecutor(workload.graph, left_deep(order))
        x_out = xjoin.run(workload.updates(800))
        workload2 = three_way_chain(
            t_multiplicity=2.0, window_r=16, window_s=16
        )
        mjoin = MJoinExecutor(workload2.graph)
        m_out = mjoin.run(workload2.updates(800))
        assert norm(x_out) == norm(m_out)

    def test_memory_tracking(self):
        workload = three_way_chain(t_multiplicity=2.0, window_r=16, window_s=16)
        executor = XJoinExecutor(workload.graph, left_deep(["R", "S", "T"]))
        executor.run(workload.updates(500))
        assert executor.peak_memory_bytes >= executor.memory_in_use()
        assert executor.peak_memory_bytes > 0

    def test_root_not_materialized(self):
        workload = three_way_chain()
        executor = XJoinExecutor(workload.graph, left_deep(["R", "S", "T"]))
        assert len(executor.stores) == 1  # only the R⋈S inner node
