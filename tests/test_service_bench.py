"""The service bench: a live minimal run, and the committed baseline.

The wall-clock rates in BENCH_service.json are machine-dependent, so
the committed-baseline checks pin only the *invariants*: zero acked
loss everywhere, admission (not overflow) doing the rejecting under
overload, and byte-identity of the acked delta log across the kill.
"""

import json
import os

import pytest

from repro.bench.service import (
    run_service_bench,
    service_bench_to_json,
)
from repro.errors import ConfigError

BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_service.json"
)


def _check_invariants(payload):
    assert payload["kind"] == "service_bench"
    assert payload["schema_version"] == 1
    scenarios = {s["name"]: s for s in payload["scenarios"]}
    assert set(scenarios) == {"clean", "overload", "kill_recover"}
    for scenario in scenarios.values():
        # The durability contract: nothing 202'd is ever lost.
        assert scenario["acked_update_loss"] == 0, scenario["name"]
    clean = scenarios["clean"]
    assert clean["batches_acked"] == clean["batches_sent"]
    assert clean["batches_rejected"] == 0
    assert clean["delta_latency_p99_ms"] >= clean["delta_latency_p50_ms"] > 0
    overload = scenarios["overload"]
    # The tight admission rate turned most of the load away at the gate.
    assert overload["batches_rejected"] > 0
    assert overload["extra"]["admission"]["rejections"] == (
        overload["batches_rejected"]
    )
    assert overload["extra"]["tier_after"] == "normal"  # ladder recovered
    recover = scenarios["kill_recover"]
    assert recover["batches_acked"] == recover["batches_sent"]
    assert recover["extra"]["resumed"] is True
    assert recover["extra"]["acked_deltas_byte_identical"] is True
    assert recover["extra"]["acked_entries_compared"] == (
        recover["updates_acked"]
    )


def test_batch_floor_is_validated():
    with pytest.raises(ConfigError, match="batches"):
        run_service_bench(batches=3)
    with pytest.raises(ConfigError, match="batch_arrivals"):
        run_service_bench(batches=10, batch_arrivals=0)


@pytest.mark.slow
def test_minimal_live_run_meets_every_invariant():
    # 30 batches is the smallest run that reliably outruns the overload
    # scenario's 200-token burst allowance, so rejections actually occur.
    report = run_service_bench(batches=30)
    _check_invariants(json.loads(service_bench_to_json(report)))


def test_committed_baseline_meets_every_invariant():
    with open(BASELINE, encoding="utf-8") as handle:
        payload = json.load(handle)
    _check_invariants(payload)
