"""Property tests for the candidate/conflict layer under random orders."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    containment_forest,
    enumerate_candidates,
    satisfies_prefix_invariant,
)
from repro.streams.workloads import star_graph


def random_orders(n, seed):
    rng = random.Random(seed)
    names = [f"R{i}" for i in range(1, n + 1)]
    orders = {}
    for owner in names:
        rest = [r for r in names if r != owner]
        rng.shuffle(rest)
        orders[owner] = tuple(rest)
    return orders


@settings(max_examples=40, deadline=None)
@given(n=st.integers(3, 7), seed=st.integers(0, 10_000))
def test_candidate_structure_invariants(n, seed):
    graph = star_graph(n)
    orders = random_orders(n, seed)
    candidates = enumerate_candidates(graph, orders, global_quota=6)

    for candidate in candidates:
        # Segments are contiguous slices of the owner's pipeline.
        order = orders[candidate.owner]
        assert candidate.segment == tuple(
            order[candidate.start : candidate.end + 1]
        )
        assert len(candidate.segment) >= 2
        if candidate.is_global:
            # The maintained set satisfies the invariant; the bare
            # segment does not (else it would be a prefix candidate).
            assert satisfies_prefix_invariant(
                candidate.maintenance_set, orders
            )
            assert not satisfies_prefix_invariant(
                candidate.member_set, orders
            )
        else:
            assert satisfies_prefix_invariant(candidate.member_set, orders)
        # Maintenance taps never sit inside the candidate's own bypass.
        if candidate.owner in candidate.tap_relations:
            assert not (
                candidate.start < candidate.tap_slot <= candidate.end
            )

    # Conflicts are symmetric and overlap implies conflict.
    for a in candidates:
        for b in candidates:
            assert a.conflicts_with(b) == b.conflicts_with(a)
            if a.overlaps(b):
                assert a.conflicts_with(b)

    # Prefix candidates in one pipeline nest: the forest always builds.
    prefix_only = [c for c in candidates if not c.is_global]
    forests = containment_forest(prefix_only)
    counted = 0

    def walk(node):
        nonlocal counted
        counted += 1
        for child in node.children:
            assert node.candidate.contains(child.candidate)
            walk(child)

    for roots in forests.values():
        for root in roots:
            walk(root)
    assert counted == len(prefix_only)
