"""Unit tests for the virtual cost clock (engine/clock.py).

Includes the calibration check the ``CostModel`` docstring promises:
with default unit costs a three-way indexed MJoin lands on the order of
50k updates per virtual second, the scale of the paper's Figures 6-13.
"""

import time

import pytest

from repro.engine.clock import CostModel, Stopwatch, VirtualClock, WallClock
from repro.planner.enumeration import run_mjoin
from repro.streams.workloads import three_way_chain


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now_us == 0.0
        assert clock.now_seconds == 0.0

    def test_charge_accumulates(self):
        clock = VirtualClock()
        clock.charge(5.0)
        clock.charge(2.5)
        assert clock.now_us == pytest.approx(7.5)

    def test_now_seconds_converts_microseconds(self):
        clock = VirtualClock()
        clock.charge(2_500_000.0)
        assert clock.now_seconds == pytest.approx(2.5)

    def test_zero_and_fractional_charges(self):
        clock = VirtualClock()
        clock.charge(0.0)
        assert clock.now_us == 0.0
        clock.charge(0.15)
        assert clock.now_us == pytest.approx(0.15)


class TestWallClock:
    def test_charge_is_a_noop(self):
        clock = WallClock()
        before = clock.now_us
        clock.charge(10_000_000.0)
        # Virtual charges must not advance a wall clock: only the tiny
        # real delay between the two reads may.
        assert clock.now_us - before < 1_000_000.0

    def test_advances_with_real_time(self):
        clock = WallClock()
        first = clock.now_us
        time.sleep(0.01)
        assert clock.now_us > first

    def test_now_seconds_matches_now_us(self):
        clock = WallClock()
        assert clock.now_seconds == pytest.approx(
            clock.now_us / 1e6, abs=0.05
        )


class TestStopwatch:
    def test_measures_charged_span(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        clock.charge(3.0)
        watch.start()
        clock.charge(4.5)
        clock.charge(1.5)
        assert watch.elapsed_us() == pytest.approx(6.0)

    def test_restart_resets_origin(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.charge(9.0)
        watch.start()
        clock.charge(2.0)
        assert watch.elapsed_us() == pytest.approx(2.0)


class TestCostModelCalibration:
    def test_defaults_are_positive(self):
        cm = CostModel()
        for name, value in cm.__dict__.items():
            assert value > 0, name

    def test_three_way_indexed_mjoin_rate(self):
        """The CostModel docstring's claim: a three-way indexed MJoin
        processes on the order of 50k updates per virtual second."""
        result = run_mjoin(lambda: three_way_chain(), 6000)
        assert 20_000 <= result.throughput <= 200_000

    def test_virtual_throughput_is_deterministic(self):
        """Virtual time depends only on operation counts, so the same
        run yields bit-identical throughput."""
        first = run_mjoin(lambda: three_way_chain(), 3000)
        second = run_mjoin(lambda: three_way_chain(), 3000)
        assert first.throughput == second.throughput
