"""Property: sharded execution is observationally equivalent to serial.

For any workload, shard count, and backend, the merged emitted-result
multiset and the final per-relation window contents must be identical to
the serial run's — including when the stream is rewritten by a
duplicate/orphan fault plan first.
"""

from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultSpec
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.streams.workloads import fig9_workload, three_way_chain

WORKLOADS = {
    "chain": partial(
        three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48
    ),
    "star3": partial(fig9_workload, 3, window=24),
}


def observed(spec, parallel):
    run = run_sharded(spec, parallel)
    return run.merged_canonical(), run.merged_windows()


def equivalence_spec(workload_key, arrivals, fault_spec=None):
    return ExperimentSpec(
        workload_factory=WORKLOADS[workload_key],
        arrivals=arrivals,
        engine=EngineSpec(kind="acaching"),
        fault_spec=fault_spec,
        output_mode="canonical",
        collect_windows=True,
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(sorted(WORKLOADS)),
    shards=st.integers(min_value=2, max_value=4),
    arrivals=st.integers(min_value=200, max_value=500),
)
def test_sharded_run_equals_serial_run(workload_key, shards, arrivals):
    spec = equivalence_spec(workload_key, arrivals)
    serial_outputs, serial_windows = observed(spec, ParallelConfig(shards=1))
    sharded_outputs, sharded_windows = observed(
        spec, ParallelConfig(shards=shards, backend="serial")
    )
    assert sharded_outputs == serial_outputs
    assert sharded_windows == serial_windows


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    shards=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_equivalence_holds_under_duplicate_and_orphan_faults(shards, seed):
    fault_spec = FaultSpec(duplicate_prob=0.08, orphan_delete_prob=0.05)
    spec = ExperimentSpec(
        workload_factory=WORKLOADS["chain"],
        arrivals=400,
        engine=EngineSpec(kind="acaching"),
        fault_spec=fault_spec,
        fault_seed=seed,
        output_mode="canonical",
        collect_windows=True,
    )
    serial_outputs, serial_windows = observed(spec, ParallelConfig(shards=1))
    sharded_outputs, sharded_windows = observed(
        spec, ParallelConfig(shards=shards, backend="serial")
    )
    assert sharded_outputs == serial_outputs
    assert sharded_windows == serial_windows


@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
def test_process_backend_equals_serial_run(workload_key):
    # One fixed-size case through real OS processes: the multiset and
    # windows must match the unsharded run bit-for-bit.
    spec = equivalence_spec(workload_key, 400)
    serial_outputs, serial_windows = observed(spec, ParallelConfig(shards=1))
    sharded_outputs, sharded_windows = observed(
        spec, ParallelConfig(shards=2, backend="process")
    )
    assert sharded_outputs == serial_outputs
    assert sharded_windows == serial_windows


def test_delta_merge_restores_global_order():
    spec = ExperimentSpec(
        workload_factory=WORKLOADS["chain"],
        arrivals=300,
        engine=EngineSpec(kind="mjoin"),
        output_mode="deltas",
    )
    serial = run_sharded(spec, ParallelConfig(shards=1))
    sharded = run_sharded(spec, ParallelConfig(shards=3))
    seqs = [seq for seq, _idx, _delta in sharded.merged_deltas()]
    assert seqs == sorted(seqs)
    # Same results in the same global arrival order (rids included:
    # workers rebuild identical workloads, so identities agree too).
    def canonical(run):
        from repro.streams.events import canonical_delta

        return [
            (seq, canonical_delta(delta))
            for seq, _idx, delta in run.merged_deltas()
        ]

    assert canonical(sharded) == canonical(serial)
