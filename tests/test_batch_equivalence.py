"""Property: micro-batched execution is byte-identical to per-update.

The batching contract (ISSUE 4's hard guarantee): for any batch size,
the emitted delta sequence — rids included, not just canonical values —
and the final per-relation window contents equal the batch-1 run's,
on the serial engine and on every sharded backend, including streams
rewritten by a fault plan and engines hardened by guard + auditor
resilience (no shedding: load shedding triggers on virtual *time*,
which batching changes by design).
"""

from functools import partial

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, Session, build_adaptive_engine
from repro.faults.auditor import AuditorConfig
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.streams.workloads import fig9_workload, three_way_chain

WORKLOADS = {
    "chain": partial(
        three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48
    ),
    "star3": partial(fig9_workload, 3, window=24),
    "star4": partial(fig9_workload, 4, window=24),
}

# Guard + auditor on, shedding off: the one resilience shape whose
# decisions depend only on update contents and counts, never on time.
NO_SHED_RESILIENCE = ResilienceConfig(
    shedding=None,
    auditor=AuditorConfig(audit_every_updates=150, entries_per_audit=4),
)


def exact_delta(delta):
    """A rid-preserving identity for one emitted OutputDelta."""
    composite = delta.composite
    return (
        delta.sign,
        tuple(
            (name, composite.row(name).rid, composite.row(name).values)
            for name in sorted(composite.relations())
        ),
    )


def window_contents(plan):
    executor = getattr(plan, "executor", plan)
    return {
        name: sorted((row.rid, row.values) for row in relation.rows())
        for name, relation in executor.relations.items()
    }


def serial_run(workload_key, arrivals, batch_size, fault_spec=None, seed=0,
               resilience=None):
    """One fresh engine driven at ``batch_size``; exact deltas + windows."""
    workload = WORKLOADS[workload_key]()
    engine = build_adaptive_engine(
        workload, EngineConfig(resilience=resilience)
    )
    updates = workload.updates(arrivals)
    if fault_spec is not None:
        updates = FaultPlan(fault_spec, seed=seed).updates(updates)
    deltas = [
        exact_delta(d)
        for d in engine.run(updates, batch_size=batch_size)
    ]
    return deltas, window_contents(engine)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(sorted(WORKLOADS)),
    batch_size=st.integers(min_value=2, max_value=97),
    arrivals=st.integers(min_value=150, max_value=450),
)
def test_batched_serial_run_equals_per_update_run(
    workload_key, batch_size, arrivals
):
    baseline = serial_run(workload_key, arrivals, 1)
    batched = serial_run(workload_key, arrivals, batch_size)
    assert batched == baseline


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    batch_size=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_batched_equivalence_under_faults_and_resilience(batch_size, seed):
    """Fault-rewritten stream + guard/auditor engine, still identical."""
    fault_spec = FaultSpec(
        duplicate_prob=0.08, orphan_delete_prob=0.05, corrupt_prob=0.04
    )
    baseline = serial_run(
        "chain", 400, 1,
        fault_spec=fault_spec, seed=seed, resilience=NO_SHED_RESILIENCE,
    )
    batched = serial_run(
        "chain", 400, batch_size,
        fault_spec=fault_spec, seed=seed, resilience=NO_SHED_RESILIENCE,
    )
    assert batched == baseline


def sharded_observation(workload_key, arrivals, batch_size, shards, backend,
                        fault_spec=None):
    session = Session.adaptive(
        WORKLOADS[workload_key],
        EngineConfig(
            batch_size=batch_size, shards=shards, parallel_backend=backend
        ),
    )
    run = run_sharded(
        session.experiment(
            arrivals,
            fault_spec=fault_spec,
            output_mode="deltas",
            collect_windows=True,
        ),
        session.config.parallel(),
    )
    deltas = [
        (seq, index, exact_delta(delta))
        for seq, index, delta in run.merged_deltas()
    ]
    return deltas, run.merged_windows()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(sorted(WORKLOADS)),
    batch_size=st.integers(min_value=2, max_value=64),
    shards=st.integers(min_value=1, max_value=3),
)
def test_batched_sharded_run_equals_per_update_run(
    workload_key, batch_size, shards
):
    baseline = sharded_observation(workload_key, 300, 1, shards, "serial")
    batched = sharded_observation(
        workload_key, 300, batch_size, shards, "serial"
    )
    assert batched == baseline


def test_batched_process_backend_equals_per_update_run():
    """The process backend, with a fault-rewritten stream on top."""
    fault_spec = FaultSpec(duplicate_prob=0.06, orphan_delete_prob=0.04)
    baseline = sharded_observation(
        "chain", 400, 1, 2, "process", fault_spec=fault_spec
    )
    batched = sharded_observation(
        "chain", 400, 64, 2, "process", fault_spec=fault_spec
    )
    assert batched == baseline


def test_batch_one_is_charge_identical_to_unbatched():
    """batch_size=1 must not even differ in virtual cost (no memo)."""
    wl_a = WORKLOADS["chain"]()
    wl_b = WORKLOADS["chain"]()
    a = build_adaptive_engine(wl_a, EngineConfig())
    b = build_adaptive_engine(wl_b, EngineConfig(batch_size=1))
    for update in wl_a.updates(300):
        a.process(update)
    b.run(wl_b.updates(300), batch_size=1)
    assert a.ctx.clock.now_us == b.ctx.clock.now_us
    assert a.ctx.metrics.updates_processed == b.ctx.metrics.updates_processed
