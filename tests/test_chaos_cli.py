"""The ``repro chaos`` command: reports, determinism, error handling."""

import pytest

from repro.cli import main
from repro.errors import ResilienceError
from repro.faults.chaos import parse_fault_overrides, run_chaos

CHAOS_ARGS = ["chaos", "demo", "--arrivals", "1200", "--seed", "3"]


def test_chaos_command_reports_degradation(capsys):
    assert main(CHAOS_ARGS) == 0
    out = capsys.readouterr().out
    assert "chaos demo — seed 3, 1200 arrivals" in out
    assert "injected faults:" in out
    assert "quarantined" in out
    assert "coherence detached" in out
    assert "result fidelity vs clean run:" in out


def test_chaos_jsonl_is_deterministic(tmp_path, capsys):
    # Migrated to the scenario library: the experiment under chaos is a
    # declarative scenario, not a hand-rolled builtin.
    args = ["chaos", "scenario:flash_crowd", "--arrivals", "1200",
            "--seed", "3"]
    one = tmp_path / "one.jsonl"
    two = tmp_path / "two.jsonl"
    assert main(args + ["--jsonl", str(one)]) == 0
    assert main(args + ["--jsonl", str(two)]) == 0
    capsys.readouterr()
    assert one.read_bytes() == two.read_bytes()
    first = one.read_text().splitlines()[0]
    assert '"kind": "chaos_summary"' in first


def test_chaos_seed_changes_the_run(tmp_path, capsys):
    one = tmp_path / "one.jsonl"
    two = tmp_path / "two.jsonl"
    assert main(CHAOS_ARGS + ["--jsonl", str(one)]) == 0
    assert (
        main(
            ["chaos", "demo", "--arrivals", "1200", "--seed", "4"]
            + ["--jsonl", str(two)]
        )
        == 0
    )
    capsys.readouterr()
    assert one.read_bytes() != two.read_bytes()


def test_chaos_faults_override_rejected_with_clean_error(capsys):
    # Satellite: ReproError surfaces as exit 1 + one-line error, no trace.
    assert main(["chaos", "demo", "--faults", "bogus=1"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "bogus" in err


def test_chaos_unknown_experiment_is_a_clean_error(capsys):
    assert main(["chaos", "nope"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "nope" in err


def test_chaos_trace_flag_replays_a_recorded_trace(tmp_path, capsys):
    from repro.scenarios import build_named_scenario_workload, record_trace

    trace = tmp_path / "t.jsonl"
    workload = build_named_scenario_workload("flash_crowd", 800)
    record_trace(workload, 800, str(trace))
    assert main(["chaos", "--trace", str(trace), "--seed", "3"]) == 0
    assert "chaos trace:" in capsys.readouterr().out


def test_chaos_unknown_trace_path_is_a_clean_error(capsys):
    assert main(["chaos", "--trace", "/nope/missing.jsonl"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "missing.jsonl" in err


def test_chaos_scenario_flag_drives_a_scenario_file(tmp_path, capsys):
    import json

    from repro.scenarios import SCENARIOS

    path = tmp_path / "sc.json"
    path.write_text(json.dumps(dict(SCENARIOS["diurnal"])))
    assert (
        main(["chaos", "--scenario", str(path), "--arrivals", "800"]) == 0
    )
    capsys.readouterr()


def test_chaos_requires_exactly_one_experiment_source(capsys):
    assert main(["chaos"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "exactly one" in err


def test_parse_fault_overrides():
    assert parse_fault_overrides(None) == {}
    assert parse_fault_overrides("a=1, b = 2,") == {"a": "1", "b": "2"}
    with pytest.raises(ResilienceError):
        parse_fault_overrides("no-equals-sign")


def test_run_chaos_rejects_bad_arrivals():
    with pytest.raises(ResilienceError):
        run_chaos("demo", arrivals=0)


def test_run_chaos_report_is_complete():
    report = run_chaos("demo", seed=5, arrivals=1000)
    assert report.clean_outputs > 0
    assert report.faulted_outputs > 0
    assert report.injected["duplicates"] >= 0
    assert set(report.summary) >= {
        "quarantined",
        "shed_total",
        "degraded",
        "coherence_detached",
        "coherence_rebuilt",
    }
    assert 0.0 <= report.discrepancy_ratio
    assert report.discrepancy == (
        report.missing_outputs + report.extra_outputs
    )
