"""Tests for windows, schedulers, generators, and workload plumbing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.streams.events import Sign
from repro.streams.generators import (
    SequentialValues,
    StreamSpec,
    UniformValues,
    fit_domain_sizes,
    predicted_pairwise_selectivity,
)
from repro.streams.sources import DeficitScheduler
from repro.streams.tuples import RowFactory
from repro.streams.windows import CountWindow
from repro.streams.workloads import (
    TABLE2_POINTS,
    fig6_workload,
    fig7_workload,
    fig9_workload,
    star_graph,
    table2_workload,
    three_way_chain,
)


class TestCountWindow:
    def test_emits_insert_then_delete_when_full(self):
        window = CountWindow("R", size=2, rows=RowFactory())
        updates = window.feed((1,), seq_start=0)
        assert [u.sign for u in updates] == [Sign.INSERT]
        window.feed((2,), seq_start=1)
        updates = window.feed((3,), seq_start=2)
        assert [u.sign for u in updates] == [Sign.DELETE, Sign.INSERT]
        # The deleted row is the oldest one.
        assert updates[0].row.values == (1,)
        assert window.fill == 2

    def test_sequence_numbers_consecutive(self):
        window = CountWindow("R", size=1)
        window.feed((1,), 0)
        updates = window.feed((2,), 1)
        assert [u.seq for u in updates] == [1, 2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CountWindow("R", size=0)


class TestDeficitScheduler:
    def test_rates_respected(self):
        scheduler = DeficitScheduler({"R": 1.0, "T": 5.0})
        emitted = list(scheduler.schedule(600))
        assert emitted.count("T") == 500
        assert emitted.count("R") == 100

    def test_rate_function_burst(self):
        scheduler = DeficitScheduler(
            {"R": 1.0, "S": 1.0},
            rate_function=lambda n: {"R": 9.0} if n >= 100 else {"R": 1.0},
        )
        before = list(scheduler.schedule(100))
        after = list(scheduler.schedule(100))
        assert abs(before.count("R") - 50) <= 1
        assert after.count("R") == 90

    def test_validation(self):
        with pytest.raises(WorkloadError):
            DeficitScheduler({})
        with pytest.raises(WorkloadError):
            DeficitScheduler({"R": -1.0})
        with pytest.raises(WorkloadError):
            DeficitScheduler({"R": 0.0})

    def test_deterministic(self):
        a = list(DeficitScheduler({"R": 2, "S": 3}).schedule(50))
        b = list(DeficitScheduler({"R": 2, "S": 3}).schedule(50))
        assert a == b


class TestGenerators:
    def test_sequential_multiplicity(self):
        gen = SequentialValues(multiplicity=3)
        assert [gen.next_value() for _ in range(7)] == [0, 0, 0, 1, 1, 1, 2]

    def test_sequential_fractional_skips(self):
        gen = SequentialValues(multiplicity=0.5)
        assert [gen.next_value() for _ in range(4)] == [0, 2, 4, 6]

    def test_sequential_offset(self):
        gen = SequentialValues(multiplicity=1, offset=100)
        assert gen.next_value() == 100

    def test_sequential_validation(self):
        with pytest.raises(WorkloadError):
            SequentialValues(multiplicity=0)

    def test_uniform_range_and_determinism(self):
        a = UniformValues(10, seed=3, offset=50)
        b = UniformValues(10, seed=3, offset=50)
        values = [a.next_value() for _ in range(100)]
        assert values == [b.next_value() for _ in range(100)]
        assert all(50 <= v < 60 for v in values)

    def test_stream_spec_payload_serial(self):
        spec = StreamSpec("R", ("A", "P"), {"A": SequentialValues(1)})
        first, second = spec.next_tuple(), spec.next_tuple()
        assert first[0] == 0 and second[0] == 1
        assert first[1] != second[1]  # payload serial advances

    def test_stream_spec_unknown_attribute(self):
        with pytest.raises(WorkloadError):
            StreamSpec("R", ("A",), {"Z": SequentialValues(1)})


class TestDomainFitting:
    def test_uniform_targets_recovered(self):
        names = ("R1", "R2", "R3")
        targets = {
            frozenset(("R1", "R2")): 0.004,
            frozenset(("R1", "R3")): 0.004,
            frozenset(("R2", "R3")): 0.004,
        }
        sizes = fit_domain_sizes(names, targets)
        for pair, target in targets.items():
            a, b = tuple(pair)
            realized = predicted_pairwise_selectivity(sizes, a, b)
            assert 0.5 * target <= realized <= 2.0 * target

    def test_all_zero_targets(self):
        sizes = fit_domain_sizes(("R1", "R2"), {frozenset(("R1", "R2")): 0.0})
        assert all(size >= 2 for size in sizes.values())


class TestWorkloads:
    def test_three_way_chain_structure(self):
        workload = three_way_chain()
        assert set(workload.graph.relations) == {"R", "S", "T"}
        updates = list(workload.updates(100))
        assert all(u.relation in {"R", "S", "T"} for u in updates)
        # sequence numbers strictly increasing
        seqs = [u.seq for u in updates]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_fig6_t_rate_scales_with_multiplicity(self):
        workload = fig6_workload(t_multiplicity=5)
        assert workload.rates["T"] == 5.0 * workload.rates["R"]

    def test_fig7_zero_selectivity_yields_no_results(self):
        from repro.mjoin.executor import MJoinExecutor

        workload = fig7_workload(0.0, window=16)
        executor = MJoinExecutor(workload.graph)
        outputs = executor.run(workload.updates(300))
        assert outputs == []

    def test_fig9_star_graph(self):
        workload = fig9_workload(5, window=8)
        assert len(workload.graph.relations) == 5
        assert star_graph(3).connected_order(["R1", "R2", "R3"])

    def test_table2_all_points_build(self):
        for point in TABLE2_POINTS:
            workload = table2_workload(point, window_base=10)
            assert len(list(workload.updates(50))) >= 50

    def test_table2_unknown_point(self):
        with pytest.raises(WorkloadError):
            table2_workload("D99")

    def test_fig10_drops_s_b_index(self):
        from repro.mjoin.executor import MJoinExecutor
        from repro.streams.workloads import fig10_workload

        workload = fig10_workload(s_window=50)
        executor = MJoinExecutor(
            workload.graph, indexed_attributes=workload.indexed_attributes
        )
        assert not executor.relations["S"].has_index("B")
        assert executor.relations["S"].has_index("A")


@settings(max_examples=25)
@given(
    rates=st.dictionaries(
        st.sampled_from(["A", "B", "C"]),
        st.floats(0.1, 10.0),
        min_size=2,
        max_size=3,
    ),
    count=st.integers(10, 400),
)
def test_scheduler_long_run_ratios(rates, count):
    """Property: emitted counts track rate shares within one tuple each."""
    scheduler = DeficitScheduler(rates)
    emitted = list(scheduler.schedule(count))
    total_rate = sum(rates.values())
    for name, rate in rates.items():
        expected = count * rate / total_rate
        assert abs(emitted.count(name) - expected) <= len(rates)
