"""Satellite guarantees riding with the service PR.

* profiler spans close on exception paths (a poison update must not
  leave the span stack unbalanced for the rest of the process);
* the wall-clock shedding trigger is opt-in via ``EngineConfig`` and
  never on by default (virtual-clock shedding keeps batch equivalence
  and recovery byte-identity deterministic — see docs/robustness.md);
* dead-letter quarantine at capacity drops the oldest entry and logs
  that decision.
"""

import pytest

from repro import obs as obs_mod
from repro.api import EngineConfig
from repro.errors import ConfigError
from repro.faults.guard import (
    DeadLetterBuffer,
    IngressGuard,
    ORPHAN_DELETE,
    UNKNOWN_RELATION,
)
from repro.faults.shedding import LoadShedder, SheddingConfig
from repro.mjoin.executor import MJoinExecutor
from repro.obs import Observability
from repro.obs.decisions import DEAD_LETTER_OVERFLOW, QUARANTINE
from repro.operators.base import ExecContext
from repro.streams.events import Sign, Update
from repro.streams.tuples import Row
from repro.streams.workloads import three_way_chain
from repro.xjoin.executor import XJoinExecutor
from repro.xjoin.tree import left_deep


def _profiled_ctx():
    return ExecContext(obs=Observability.tracing(profile=True))


class _Boom(Exception):
    pass


# ----------------------------------------------------------------------
# Spans close on exception paths
# ----------------------------------------------------------------------
def test_mjoin_span_stack_balanced_when_pipeline_raises():
    workload = three_way_chain()
    executor = MJoinExecutor(
        workload.graph,
        indexed_attributes=workload.indexed_attributes,
        ctx=_profiled_ctx(),
    )
    prof = executor.ctx.obs.profiler

    class PoisonOp:
        def apply(self, composites, ctx):
            raise _Boom("poisoned operator")

    executor.process(Update("R", Row(1, (5,)), Sign.INSERT, 1))
    assert prof.depth == 0

    # Poison the pipeline an update will walk: both the operator span
    # (operators/pipeline.py) and the update span (mjoin/executor.py)
    # must unwind.
    executor.pipelines["R"].operators[0] = PoisonOp()
    with pytest.raises(_Boom):
        executor.process(Update("R", Row(2, (6,)), Sign.INSERT, 2))
    assert prof.depth == 0

    # The profiler keeps working afterwards on an un-poisoned pipeline.
    executor.process(Update("S", Row(3, (5, 7)), Sign.INSERT, 3))
    assert prof.depth == 0
    snapshot = prof.snapshot()
    assert snapshot.spans["update:R"]["count"] == 2  # poison span closed
    assert snapshot.spans["update:S"]["count"] == 1


def test_xjoin_span_stack_balanced_when_propagation_raises():
    workload = three_way_chain()
    executor = XJoinExecutor(
        workload.graph,
        left_deep(["R", "S", "T"]),
        ctx=_profiled_ctx(),
    )
    prof = executor.ctx.obs.profiler

    def boom(*args, **kwargs):
        raise _Boom("poisoned subresult probe")

    executor._matches = boom
    with pytest.raises(_Boom):
        executor.process(Update("R", Row(1, (5,)), Sign.INSERT, 1))
    assert prof.depth == 0


# ----------------------------------------------------------------------
# Wall-clock shedding stays opt-in
# ----------------------------------------------------------------------
def test_shed_wall_clock_flag_threads_through_engine_config():
    config = EngineConfig(shed_wall_clock=True)
    assert config.resilience.shedding.wall_clock is True
    # The default stays virtual — recovery byte-identity depends on it.
    assert EngineConfig().shed_wall_clock is False
    default_shedding = SheddingConfig()
    assert default_shedding.wall_clock is False


def test_shed_wall_clock_requires_shedding_enabled():
    from repro.faults.resilience import ResilienceConfig

    with pytest.raises(ConfigError) as err:
        EngineConfig(
            shed_wall_clock=True,
            resilience=ResilienceConfig(shedding=None),
        )
    assert "shed_wall_clock" in str(err.value)


def test_shedder_clock_source_follows_wall_clock_flag():
    ctx = ExecContext()  # virtual clock parked at 0
    virtual = LoadShedder(SheddingConfig())
    wall = LoadShedder(SheddingConfig(wall_clock=True))
    assert virtual._now_us(ctx) == ctx.clock.now_us
    # perf_counter-based readings move between calls; the virtual clock
    # does not.
    first, second = wall._now_us(ctx), wall._now_us(ctx)
    assert second > first > 0.0


# ----------------------------------------------------------------------
# Dead-letter quarantine at the bound
# ----------------------------------------------------------------------
def test_dead_letter_overflow_drops_oldest_and_logs_the_decision():
    workload = three_way_chain()
    executor = MJoinExecutor(
        workload.graph, indexed_attributes=workload.indexed_attributes
    )
    ctx = executor.ctx
    guard = IngressGuard(executor.relations, DeadLetterBuffer(capacity=2))

    # Three quarantines into a 2-slot buffer: the third evicts the first.
    assert guard.admit(Update("Z", Row(1, (1,)), Sign.INSERT, 1), ctx)
    assert guard.admit(Update("R", Row(7, (1,)), Sign.DELETE, 2), ctx)
    assert guard.admit(Update("Z", Row(3, (1,)), Sign.INSERT, 3), ctx)

    assert guard.dead_letters.dropped == 1
    assert [e.rid for e in guard.dead_letters.entries()] == [7, 3]

    entries = ctx.obs.decisions.entries()
    actions = [e.action for e in entries]
    assert actions.count(QUARANTINE) == 3
    assert actions.count(DEAD_LETTER_OVERFLOW) == 1
    overflow = next(
        e for e in entries if e.action == DEAD_LETTER_OVERFLOW
    )
    # The decision names what was lost: the oldest entry and its reason.
    assert "dropped oldest rid=1" in overflow.reason
    assert UNKNOWN_RELATION in overflow.reason
    # The surviving entries are the newest two.
    assert [e.reason for e in guard.dead_letters.entries()] == [
        ORPHAN_DELETE, UNKNOWN_RELATION,
    ]
