"""The parallel engine: backends, stats merging, modeled speedup."""

from functools import partial

import pytest

from repro.engine.reporting import series_to_csv
from repro.errors import ParallelError
from repro.parallel.engine import ParallelConfig, ParallelEngine, run_sharded
from repro.parallel.series import run_series_sharded
from repro.parallel.shard import ShardStats
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.parallel.stats import StatsMerger
from repro.streams.workloads import fig9_workload, three_way_chain

CHAIN = partial(three_way_chain, t_multiplicity=5.0, window_r=64, window_s=64)
STAR = partial(fig9_workload, 4, window=32)


def spec_for(factory, arrivals=600, **kwargs):
    return ExperimentSpec(
        workload_factory=factory, arrivals=arrivals, **kwargs
    )


def test_config_validation():
    with pytest.raises(ParallelError):
        ParallelConfig(shards=0)
    with pytest.raises(ParallelError):
        ParallelConfig(shards=2, backend="threads")
    assert not ParallelConfig(shards=1).active
    assert ParallelConfig(shards=2).active


def test_process_backend_matches_serial_backend_exactly():
    spec = spec_for(CHAIN, output_mode="deltas")
    serial = run_sharded(spec, ParallelConfig(shards=2, backend="serial"))
    process = run_sharded(spec, ParallelConfig(shards=2, backend="process"))
    assert serial.merged_deltas() == process.merged_deltas()
    assert [r.stats for r in serial.results] == [
        r.stats for r in process.results
    ]
    assert serial.stats.critical_path_us == process.stats.critical_path_us


def test_modeled_speedup_on_the_star_workload():
    spec = spec_for(STAR, arrivals=1200, engine=EngineSpec(kind="mjoin"))
    one = run_sharded(spec, ParallelConfig(shards=1))
    four = run_sharded(spec, ParallelConfig(shards=4))
    speedup = four.stats.speedup_over_us(one.stats.critical_path_us)
    assert speedup > 1.8
    assert four.stats.balance > 0.5


def test_merged_stats_arithmetic():
    stats = [
        ShardStats(
            shard=0, shard_count=2, updates_processed=100,
            outputs_emitted=10, cache_probes=50, cache_hits=25,
            clock_us=2_000_000.0, measured_updates=60,
            measured_span_us=1_000_000.0, used_caches=("a",),
            memory_bytes=100, per_cache_hits={"a": 25},
        ),
        ShardStats(
            shard=1, shard_count=2, updates_processed=200,
            outputs_emitted=30, cache_probes=50, cache_hits=0,
            clock_us=4_000_000.0, measured_updates=140,
            measured_span_us=2_000_000.0, used_caches=("a", "b"),
            memory_bytes=300, per_cache_hits={"a": 0},
        ),
    ]
    merged = StatsMerger().merge(stats, source_updates=250)
    assert merged.updates_processed == 300
    assert merged.source_updates == 250
    assert merged.total_work_us == 6_000_000.0
    assert merged.critical_path_us == 4_000_000.0
    assert merged.hit_rate == 0.25
    assert merged.used_caches == ("a", "b")
    assert merged.memory_bytes == 400
    # 250 source updates over a 4s critical path.
    assert merged.modeled_throughput == pytest.approx(62.5)
    # 200 measured updates over the slowest 2s measured span.
    assert merged.steady_throughput == pytest.approx(100.0)
    # mean clock 3s over max clock 4s.
    assert merged.balance == pytest.approx(0.75)
    assert merged.speedup_over_us(8_000_000.0) == pytest.approx(2.0)


def test_merger_rejects_inconsistent_shard_sets():
    lone = ShardStats(shard=0, shard_count=3)
    with pytest.raises(ParallelError):
        StatsMerger().merge([lone])
    with pytest.raises(ParallelError):
        StatsMerger().merge([])


def test_merge_summaries_sums_and_ors():
    merged = StatsMerger().merge_summaries(
        [
            {"shed_total": 3, "degraded": False, "by": {"R": 1}},
            None,
            {"shed_total": 4, "degraded": True, "by": {"R": 2, "S": 5}},
        ]
    )
    assert merged["shed_total"] == 7
    assert merged["degraded"] is True
    assert merged["by"] == {"R": 3, "S": 5}


def test_sharded_series_reports_shard_count():
    series = run_series_sharded(
        spec_for(CHAIN, arrivals=800), shards=2, sample_every_updates=400
    )
    assert series
    assert all(point.shard_count == 2 for point in series)
    assert all(point.window_throughput > 0 for point in series)
    csv_text = series_to_csv(series)
    assert "shard_count" in csv_text.splitlines()[0]
    assert ",2" in csv_text.splitlines()[1]


def test_windows_require_collection():
    run = run_sharded(spec_for(CHAIN), ParallelConfig(shards=2))
    with pytest.raises(ParallelError):
        run.merged_windows()


def test_bench_meets_the_speedup_floor():
    from repro.parallel.bench import bench_to_json, run_parallel_bench

    report = run_parallel_bench(
        shard_counts=(1, 4), arrivals=2000, backend="serial"
    )
    by_shards = {p.shards: p for p in report.points}
    assert by_shards[1].modeled_speedup == pytest.approx(1.0, abs=1e-6)
    # Acceptance floor: >= 1.8x modeled at 4 shards.
    assert by_shards[4].modeled_speedup >= 1.8
    text = bench_to_json(report)
    assert '"kind": "parallel_bench"' in text
    assert '"schema_version": 2' in text
