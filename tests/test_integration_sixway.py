"""Integration: the paper's six-way Figure 5 configuration, end to end.

Wires the full Example 4.1/4.2 structure — nested candidates, a
three-pipeline shared cache group — runs a live star workload, and checks
exactness against brute force plus the sharing economics (one physical
store, three probing pipelines).
"""

import pytest

from repro.core.candidates import enumerate_prefix_candidates, shared_groups
from repro.core.wiring import CacheWiring
from repro.mjoin.executor import MJoinExecutor
from repro.streams.workloads import fig9_workload

FIGURE5_ORDERS = {
    "R1": ("R2", "R3", "R4", "R5", "R6"),
    "R2": ("R1", "R3", "R5", "R4", "R6"),
    "R3": ("R2", "R1", "R4", "R5", "R6"),
    "R4": ("R5", "R1", "R2", "R3", "R6"),
    "R5": ("R4", "R2", "R3", "R1", "R6"),
    "R6": ("R2", "R1", "R4", "R5", "R3"),
}


def brute_force(executor):
    total = 0
    for row in executor.relations["R1"].rows():
        product = 1
        for other in ("R2", "R3", "R4", "R5", "R6"):
            product *= executor.relations[other].match_count(
                "A", row.values[0]
            )
            if product == 0:
                break
        total += product
    return total


@pytest.fixture(scope="module")
def run():
    workload = fig9_workload(6, window=12)
    executor = MJoinExecutor(workload.graph, orders=FIGURE5_ORDERS)
    candidates = enumerate_prefix_candidates(
        workload.graph, FIGURE5_ORDERS
    )
    # Wire the shared {R1,R2} group (three pipelines) plus the {R4,R5}
    # candidates — all mutually conflict-free.
    chosen = []
    for candidate in candidates:
        if frozenset(candidate.segment) in (
            frozenset({"R1", "R2"}),
            frozenset({"R4", "R5"}),
        ):
            if not any(candidate.conflicts_with(c) for c in chosen):
                chosen.append(candidate)
    wiring = CacheWiring(executor)
    for candidate in chosen:
        wiring.attach(candidate, buckets=128)
    outputs = executor.run(workload.updates(2500))
    return executor, wiring, chosen, outputs


class TestSixWayIntegration:
    def test_exactness(self, run):
        executor, _wiring, _chosen, outputs = run
        live = sum(int(o.sign) for o in outputs)
        assert live == brute_force(executor)

    def test_sharing_structure(self, run):
        executor, wiring, chosen, _outputs = run
        r1r2 = [
            c for c in chosen if frozenset(c.segment) == frozenset({"R1", "R2"})
        ]
        assert {c.owner for c in r1r2} == {"R3", "R4", "R6"}
        stores = {id(wiring.wired[c.candidate_id].cache) for c in r1r2}
        assert len(stores) == 1, "shared group must back one physical store"

    def test_shared_cache_served_multiple_pipelines(self, run):
        executor, wiring, chosen, _outputs = run
        r1r2 = [
            c for c in chosen if frozenset(c.segment) == frozenset({"R1", "R2"})
        ]
        cache = wiring.wired[r1r2[0].candidate_id].cache
        assert cache.probes > 0
        assert cache.hits > 0
        # Per-pipeline probe metrics: every owner's lookup fired.
        per_cache = executor.ctx.metrics.per_cache_hits
        assert per_cache.get(cache.name, 0) > 0

def test_detach_and_reattach_mid_stream_preserves_exactness():
    """Dropping and re-adding shared members mid-run must not disturb
    results (plan switching is free, Section 3.2)."""
    workload = fig9_workload(6, window=12)
    executor = MJoinExecutor(workload.graph, orders=FIGURE5_ORDERS)
    candidates = enumerate_prefix_candidates(workload.graph, FIGURE5_ORDERS)
    wiring = CacheWiring(executor)
    chosen = []
    for candidate in candidates:
        if frozenset(candidate.segment) == frozenset({"R1", "R2"}):
            chosen.append(candidate)
            wiring.attach(candidate, buckets=128)
    outputs = []
    for i, update in enumerate(workload.updates(3000)):
        outputs.extend(executor.process(update))
        if i == 1500:
            wiring.detach(chosen[0].candidate_id)
        if i == 2200:
            wiring.attach(chosen[0], buckets=128)
    live = sum(int(o.sign) for o in outputs)
    assert live == brute_force(executor)
