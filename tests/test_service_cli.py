"""The service's CLI surface: ``serve``, ``chaos service``, ``bench --service``.

The long-running paths (a full chaos storm, the three-scenario bench)
have their own coverage via the library entry points; here the focus is
the command-line contract — clean ``error:`` lines, exit codes, and the
signal-driven drain of ``repro serve``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["PYTHONUNBUFFERED"] = "1"
    return env


def test_serve_bind_conflict_is_a_clean_error(capsys):
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    try:
        assert main(["serve", "--port", str(port)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot bind")
        assert str(port) in err
    finally:
        blocker.close()


def test_serve_rejects_out_of_range_port(capsys):
    assert main(["serve", "--port", "99999"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "port" in err


def test_serve_drains_cleanly_on_sigint(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--wal-root", str(tmp_path / "wal")],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    try:
        banner = process.stdout.readline()
        assert "serving at http://127.0.0.1:" in banner
        assert "SIGINT/SIGTERM drains" in banner
        process.send_signal(signal.SIGINT)
        out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        assert "drained and stopped" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def test_bench_service_validates_batch_floor(capsys):
    assert main(["bench", "--service", "--batches", "3"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "batches" in err


def test_bench_service_out_path_must_be_writable():
    # _ensure_writable fails fast, before the (minutes-long) bench runs.
    with pytest.raises(SystemExit, match="cannot write"):
        main(["bench", "--service", "--out", "/nonexistent-dir/x.json"])


def test_chaos_service_jsonl_path_must_be_writable():
    with pytest.raises(SystemExit, match="cannot write"):
        main(["chaos", "service", "--jsonl", "/nonexistent-dir/x.jsonl"])


@pytest.mark.slow
def test_chaos_service_survives_and_reports(tmp_path, capsys):
    out = tmp_path / "report.jsonl"
    assert main(
        ["chaos", "service", "--seed", "11", "--arrivals", "15",
         "--jsonl", str(out)]
    ) == 0
    text = capsys.readouterr().out
    assert "service chaos (seed 11): SURVIVED" in text
    assert "disconnect storm" in text
    report = json.loads(out.read_text().splitlines()[0])
    assert report["survived"] is True
    assert report["failures"] == []
    # Zero acked loss: everything the service 202'd was processed.
    assert report["processed_seq"] >= report["acked_seq"]
