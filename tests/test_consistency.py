"""The library's central correctness property.

Caches are pure accelerators: for any workload, any pipeline orderings,
and any legal combination of prefix-invariant and globally-consistent
caches, the emitted result-delta stream must be *identical* (as a
multiset) to the cache-free MJoin's, and the accumulated live result must
equal a brute-force recomputation from the final window contents.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import enumerate_candidates
from repro.core.wiring import CacheWiring
from repro.mjoin.executor import MJoinExecutor
from repro.relations.predicates import JoinGraph
from repro.streams.events import Sign
from repro.streams.tuples import Schema
from repro.streams.workloads import (
    fig9_workload,
    table2_workload,
    three_way_chain,
)


def normalized_deltas(outputs):
    return sorted(
        (
            int(o.sign),
            tuple(sorted((r, o.composite.row(r).rid) for r in o.composite)),
        )
        for o in outputs
    )


def brute_force_chain(executor):
    """Live |R ⋈ S ⋈ T| for the three-way chain query."""
    total = 0
    for s in executor.relations["S"].rows():
        total += executor.relations["R"].match_count(
            "A", s.values[0]
        ) * executor.relations["T"].match_count("B", s.values[1])
    return total


def brute_force_star(executor, names):
    """Live n-way star join size via index counts."""
    total = 0
    first = names[0]
    for row in executor.relations[first].rows():
        product = 1
        for other in names[1:]:
            product *= executor.relations[other].match_count(
                "A", row.values[0]
            )
            if product == 0:
                break
        total += product
    return total


def run_with_caches(workload, orders, candidate_filter, arrivals):
    executor = MJoinExecutor(
        workload.graph,
        orders=orders,
        indexed_attributes=workload.indexed_attributes,
    )
    candidates = enumerate_candidates(
        workload.graph, executor.orders(), global_quota=10
    )
    wiring = CacheWiring(executor)
    chosen = []
    for candidate in candidates:
        if not candidate_filter(candidate):
            continue
        if any(candidate.conflicts_with(c) for c in chosen):
            continue
        chosen.append(candidate)
        wiring.attach(candidate, buckets=64)
    outputs = executor.run(workload.updates(arrivals))
    return executor, outputs, chosen


CHAIN_ORDERS = [
    {"R": ("S", "T"), "S": ("R", "T"), "T": ("S", "R")},
    {"R": ("T", "S"), "S": ("R", "T"), "T": ("S", "R")},
    {"R": ("S", "T"), "S": ("T", "R"), "T": ("S", "R")},
]


class TestChainConsistency:
    @pytest.mark.parametrize("orders", CHAIN_ORDERS)
    @pytest.mark.parametrize("use_globals", [False, True])
    def test_all_candidates_preserve_outputs(self, orders, use_globals):
        def wanted(candidate):
            return candidate.is_global == use_globals or not candidate.is_global

        workload = three_way_chain(
            t_multiplicity=3.0, window_r=24, window_s=24
        )
        executor, outputs, chosen = run_with_caches(
            workload, orders, wanted, arrivals=1500
        )
        baseline_workload = three_way_chain(
            t_multiplicity=3.0, window_r=24, window_s=24
        )
        baseline = MJoinExecutor(baseline_workload.graph, orders=orders)
        baseline_outputs = baseline.run(baseline_workload.updates(1500))
        assert normalized_deltas(outputs) == normalized_deltas(
            baseline_outputs
        )
        live = sum(int(o.sign) for o in outputs)
        assert live == brute_force_chain(executor)

    def test_global_only_candidates(self):
        orders = {"R": ("T", "S"), "S": ("R", "T"), "T": ("S", "R")}
        workload = three_way_chain(
            t_multiplicity=3.0, window_r=24, window_s=24
        )
        executor, outputs, chosen = run_with_caches(
            workload, orders, lambda c: c.is_global, arrivals=1500
        )
        assert chosen, "expected at least one global candidate"
        live = sum(int(o.sign) for o in outputs)
        assert live == brute_force_chain(executor)
        assert executor.ctx.metrics.cache_hits > 0


class TestStarConsistency:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_star_with_all_prefix_candidates(self, n):
        workload = fig9_workload(n, window=16)
        names = [f"R{i}" for i in range(1, n + 1)]
        executor, outputs, chosen = run_with_caches(
            workload, None, lambda c: not c.is_global, arrivals=900
        )
        live = sum(int(o.sign) for o in outputs)
        assert live == brute_force_star(executor, names)

    def test_table2_point_with_globals(self):
        workload = table2_workload("D5", window_base=12)
        executor, outputs, chosen = run_with_caches(
            workload, None, lambda c: True, arrivals=900
        )
        names = [f"R{i}" for i in range(1, 5)]
        live = sum(int(o.sign) for o in outputs)
        assert live == brute_force_star(executor, names)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    t_multiplicity=st.sampled_from([1.0, 2.0, 5.0]),
    window=st.sampled_from([8, 16, 32]),
)
def test_random_cache_subsets_preserve_outputs(seed, t_multiplicity, window):
    """Property: ANY nonoverlapping candidate subset leaves outputs intact."""
    rng = random.Random(seed)
    orders = rng.choice(CHAIN_ORDERS)

    def coin(_candidate):
        return rng.random() < 0.7

    workload = three_way_chain(
        t_multiplicity=t_multiplicity, window_r=window, window_s=window
    )
    executor, outputs, chosen = run_with_caches(
        workload, orders, coin, arrivals=800
    )
    live = sum(int(o.sign) for o in outputs)
    assert live == brute_force_chain(executor)

    baseline_workload = three_way_chain(
        t_multiplicity=t_multiplicity, window_r=window, window_s=window
    )
    baseline = MJoinExecutor(baseline_workload.graph, orders=orders)
    baseline_outputs = baseline.run(baseline_workload.updates(800))
    assert normalized_deltas(outputs) == normalized_deltas(baseline_outputs)


def test_adaptive_engine_preserves_outputs():
    """The full adaptive stack (profiler + reoptimizer + orderer) is exact."""
    from repro.core.acaching import ACaching, ACachingConfig
    from repro.core.profiler import ProfilerConfig
    from repro.core.reoptimizer import ReoptimizerConfig

    workload = three_way_chain(t_multiplicity=5.0, window_r=32, window_s=32)
    config = ACachingConfig(
        profiler=ProfilerConfig(
            window=5, profile_probability=0.1, bloom_window_tuples=24
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1200, profiling_phase_updates=200
        ),
    )
    engine = ACaching.for_workload(workload, config)
    outputs = engine.run(workload.updates(6000))
    live = sum(int(o.sign) for o in outputs)
    assert live == brute_force_chain(engine.executor)

    baseline_workload = three_way_chain(
        t_multiplicity=5.0, window_r=32, window_s=32
    )
    baseline = MJoinExecutor(baseline_workload.graph)
    baseline_outputs = baseline.run(baseline_workload.updates(6000))
    # Orders may differ mid-run, but the delta multiset must match.
    assert normalized_deltas(outputs) == normalized_deltas(baseline_outputs)
