"""Unit and property tests for relation storage and hash indexes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations.index import HashIndex, bulk_build
from repro.relations.relation import Relation
from repro.streams.events import TUPLE_BYTES
from repro.streams.tuples import Row, RowFactory, Schema


class TestHashIndex:
    def test_add_lookup_remove(self):
        index = HashIndex(0)
        a, b = Row(1, (5,)), Row(2, (5,))
        index.add(a)
        index.add(b)
        assert {r.rid for r in index.lookup(5)} == {1, 2}
        assert index.count(5) == 2
        index.remove(a)
        assert [r.rid for r in index.lookup(5)] == [2]
        assert index.lookup(99) == []

    def test_remove_last_clears_bucket(self):
        index = HashIndex(0)
        row = Row(1, (5,))
        index.add(row)
        index.remove(row)
        assert index.distinct_values() == 0
        assert len(index) == 0

    def test_remove_absent_is_noop(self):
        index = HashIndex(0)
        index.remove(Row(1, (5,)))
        assert len(index) == 0

    def test_bulk_build(self):
        rows = [Row(i, (i % 3,)) for i in range(9)]
        index = bulk_build(0, rows)
        assert index.count(0) == 3
        assert index.distinct_values() == 3


class TestRelation:
    def make(self, indexed=("A",)):
        return Relation(Schema("R", ("A", "B")), indexed)

    def test_insert_delete_roundtrip(self):
        relation = self.make()
        row = Row(0, (1, 2))
        relation.insert(row)
        assert row in relation
        assert len(relation) == 1
        relation.delete(row)
        assert row not in relation
        assert len(relation) == 0

    def test_delete_absent_is_noop(self):
        relation = self.make()
        relation.delete(Row(0, (1, 2)))
        assert len(relation) == 0

    def test_matching_uses_index_or_scan_equally(self):
        indexed = self.make(indexed=("A",))
        scanned = self.make(indexed=())
        for i in range(10):
            row = Row(i, (i % 4, i))
            indexed.insert(row)
            scanned.insert(Row(i, (i % 4, i)))
        assert sorted(r.rid for r in indexed.matching("A", 2)) == sorted(
            r.rid for r in scanned.matching("A", 2)
        )
        assert indexed.match_count("A", 2) == scanned.match_count("A", 2)

    def test_matching_on_unindexed_attribute_scans(self):
        relation = self.make(indexed=("A",))
        relation.insert(Row(0, (1, 7)))
        relation.insert(Row(1, (2, 7)))
        assert relation.match_count("B", 7) == 2

    def test_add_index_backfills_existing_rows(self):
        relation = self.make(indexed=())
        relation.insert(Row(0, (3, 0)))
        relation.add_index("A")
        assert relation.has_index("A")
        assert relation.index("A").count(3) == 1

    def test_drop_index(self):
        relation = self.make(indexed=("A",))
        relation.drop_index("A")
        assert not relation.has_index("A")

    def test_memory_accounting(self):
        relation = self.make()
        for i in range(5):
            relation.insert(Row(i, (i, i)))
        assert relation.memory_bytes == 5 * TUPLE_BYTES


@settings(max_examples=50)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 5)),
        max_size=60,
    )
)
def test_index_agrees_with_scan_under_random_churn(operations):
    """Property: index lookups always equal a full scan filter."""
    relation = Relation(Schema("R", ("A",)), ("A",))
    factory = RowFactory()
    live = {}
    by_value = {}
    for action, value in operations:
        if action == "insert":
            row = factory.make((value,))
            relation.insert(row)
            live[row.rid] = row
            by_value.setdefault(value, set()).add(row.rid)
        elif live:
            rid = next(iter(live))
            row = live.pop(rid)
            relation.delete(row)
            by_value[row.values[0]].discard(rid)
    for value in range(6):
        expected = by_value.get(value, set())
        assert {r.rid for r in relation.matching("A", value)} == expected
        assert relation.match_count("A", value) == len(expected)
