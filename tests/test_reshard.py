"""Elastic resharding: a mid-run rescale is invisible in the output.

``ParallelRun.rescale`` repartitions live window state at an update
boundary; the stopped prefix plus the rescaled suffix must render the
same output chronology and leave the same final windows as one
uninterrupted run at the target shard count.
"""

from dataclasses import replace
from functools import partial

import pytest

from repro.errors import ParallelError
from repro.parallel.adaptivity import AdaptivityConfig
from repro.parallel.engine import (
    ParallelConfig,
    output_chronology,
    run_sharded,
)
from repro.parallel.spec import EngineSpec, ExperimentSpec, ReshardSeed
from repro.streams.workloads import fig9_workload

SYNC = 100
ARRIVALS = 500


def _spec(**overrides):
    base = dict(
        workload_factory=partial(fig9_workload, 3, window=24),
        arrivals=ARRIVALS,
        engine=EngineSpec(kind="acaching"),
        adaptivity=AdaptivityConfig(sync_every_updates=SYNC),
        output_mode="deltas",
        collect_windows=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.mark.parametrize(
    "from_shards,to_shards", [(2, 4), (4, 2), (2, 1)]
)
def test_rescale_output_is_identical_to_a_fixed_shard_run(
    from_shards, to_shards
):
    base = _spec()
    fixed = run_sharded(
        base, ParallelConfig(shards=to_shards, backend="serial")
    )
    stopped = run_sharded(
        replace(base, stop_after_updates=2 * SYNC),
        ParallelConfig(shards=from_shards, backend="serial"),
    )
    resumed = stopped.rescale(to_shards, backend="serial")
    assert output_chronology(stopped, resumed) == output_chronology(fixed)
    assert resumed.merged_windows() == fixed.merged_windows()


def test_rescale_boundary_splits_the_stream_exactly_once():
    base = _spec()
    stopped = run_sharded(
        replace(base, stop_after_updates=2 * SYNC),
        ParallelConfig(shards=2, backend="serial"),
    )
    resumed = stopped.rescale(4, backend="serial")
    stopped_seqs = {seq for seq, _, _ in stopped.merged_deltas()}
    resumed_seqs = {seq for seq, _, _ in resumed.merged_deltas()}
    assert not stopped_seqs & resumed_seqs, (
        "an update produced output on both sides of the boundary"
    )


def test_rescale_requires_a_stop_boundary():
    run = run_sharded(_spec(), ParallelConfig(shards=2, backend="serial"))
    with pytest.raises(ParallelError, match="stop_after_updates"):
        run.rescale(4)


def test_reshard_seed_rejects_negative_skip():
    with pytest.raises(ParallelError, match="skip_source_through"):
        ReshardSeed(skip_source_through=-1, windows={})


def test_stop_after_updates_validates():
    with pytest.raises(ParallelError, match="stop_after_updates"):
        _spec(stop_after_updates=0)


def test_xjoin_engines_cannot_be_resharded():
    with pytest.raises(ParallelError, match="xjoin"):
        ExperimentSpec(
            workload_factory=partial(fig9_workload, 3, window=24),
            arrivals=ARRIVALS,
            engine=EngineSpec(kind="xjoin"),
            reshard=ReshardSeed(skip_source_through=0, windows={}),
        )
