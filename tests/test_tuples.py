"""Unit tests for schemas, rows, and composite tuples."""

import pytest

from repro.errors import SchemaError
from repro.streams.tuples import CompositeTuple, Row, RowFactory, Schema


class TestSchema:
    def test_index_of(self):
        schema = Schema("R", ("A", "B", "C"))
        assert schema.index_of("A") == 0
        assert schema.index_of("C") == 2

    def test_unknown_attribute_raises(self):
        schema = Schema("R", ("A",))
        with pytest.raises(SchemaError, match="no attribute"):
            schema.index_of("Z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema("R", ("A", "A"))

    def test_contains_and_len(self):
        schema = Schema("R", ("A", "B"))
        assert "A" in schema
        assert "Z" not in schema
        assert len(schema) == 2

    def test_equality_and_hash(self):
        assert Schema("R", ("A",)) == Schema("R", ("A",))
        assert Schema("R", ("A",)) != Schema("S", ("A",))
        assert hash(Schema("R", ("A",))) == hash(Schema("R", ("A",)))


class TestRow:
    def test_identity_equality(self):
        a = Row(1, (5,))
        b = Row(1, (7,))  # same rid, different values: same window entry
        c = Row(2, (5,))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_getitem(self):
        row = Row(0, (10, 20))
        assert row[1] == 20


class TestRowFactory:
    def test_monotonic_rids(self):
        factory = RowFactory()
        rows = [factory.make((i,)) for i in range(5)]
        assert [r.rid for r in rows] == [0, 1, 2, 3, 4]
        assert factory.allocated == 5

    def test_start_offset(self):
        factory = RowFactory(start=100)
        assert factory.make(()).rid == 100


class TestCompositeTuple:
    def test_of_and_extend(self):
        r = Row(0, (1,))
        s = Row(1, (1, 2))
        composite = CompositeTuple.of("R", r).extended("S", s)
        assert composite.row("R") is r
        assert composite.value("S", 1) == 2
        assert composite.relations() == {"R", "S"}

    def test_extended_does_not_mutate_original(self):
        base = CompositeTuple.of("R", Row(0, (1,)))
        extended = base.extended("S", Row(1, (2,)))
        assert "S" not in base
        assert "S" in extended

    def test_project(self):
        composite = (
            CompositeTuple.of("R", Row(0, (1,)))
            .extended("S", Row(1, (2,)))
            .extended("T", Row(2, (3,)))
        )
        projected = composite.project(["R", "T"])
        assert projected.relations() == {"R", "T"}

    def test_merge_disjoint(self):
        a = CompositeTuple.of("R", Row(0, (1,)))
        b = CompositeTuple.of("S", Row(1, (2,)))
        merged = a.merge(b)
        assert merged.relations() == {"R", "S"}

    def test_identity_orders_by_given_sequence(self):
        composite = CompositeTuple.of("R", Row(7, (1,))).extended(
            "S", Row(3, (2,))
        )
        assert composite.identity(["S", "R"]) == (3, 7)

    def test_equality_by_rid(self):
        a = CompositeTuple.of("R", Row(0, (1,)))
        b = CompositeTuple.of("R", Row(0, (999,)))
        assert a == b
        assert hash(a) == hash(b)
