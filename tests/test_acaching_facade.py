"""Tests for the ACaching facade and its wiring of the subsystems."""

import pytest

from repro.core.acaching import ACaching, ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.engine.clock import WallClock
from repro.operators.base import ExecContext
from repro.ordering.agreedy import OrderingConfig
from repro.streams.events import Sign
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def small_config(**reopt):
    return ACachingConfig(
        profiler=ProfilerConfig(
            window=4, profile_probability=0.1, bloom_window_tuples=24
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1000, profiling_phase_updates=200, **reopt
        ),
        ordering=OrderingConfig(interval_updates=10**9),
    )


class TestFacade:
    def test_for_workload_uses_index_config(self):
        from repro.streams.workloads import fig10_workload

        workload = fig10_workload(s_window=50)
        engine = ACaching.for_workload(workload, small_config())
        assert not engine.executor.relations["S"].has_index("B")

    def test_ctx_property(self):
        workload = three_way_chain()
        engine = ACaching.for_workload(workload, small_config())
        assert engine.ctx is engine.executor.ctx

    def test_run_returns_all_deltas(self):
        workload = three_way_chain(
            t_multiplicity=2.0, window_r=16, window_s=16
        )
        engine = ACaching(
            workload.graph, orders=CHAIN_ORDERS, config=small_config()
        )
        outputs = engine.run(workload.updates(600))
        assert all(o.sign in (Sign.INSERT, Sign.DELETE) for o in outputs)

    def test_candidate_states_are_strings(self):
        workload = three_way_chain()
        engine = ACaching.for_workload(workload, small_config())
        states = engine.candidate_states()
        assert states
        assert set(states.values()) <= {"used", "profiled", "unused"}

    def test_throughput_zero_before_work(self):
        workload = three_way_chain()
        engine = ACaching.for_workload(workload, small_config())
        assert engine.throughput() == 0.0

    def test_wall_clock_mode(self):
        workload = three_way_chain(
            t_multiplicity=2.0, window_r=16, window_s=16
        )
        ctx = ExecContext(clock=WallClock())
        engine = ACaching(
            workload.graph,
            orders=CHAIN_ORDERS,
            config=small_config(),
            ctx=ctx,
        )
        engine.run(workload.updates(400))
        # Real time passed; virtual charges were ignored.
        assert engine.ctx.clock.now_seconds > 0
        assert engine.throughput() > 0

    def test_memory_budget_plumbed_to_allocator(self):
        workload = three_way_chain()
        engine = ACaching.for_workload(
            workload, small_config(memory_budget_bytes=12345)
        )
        assert engine.reoptimizer.allocator.budget_bytes == 12345

    def test_disable_adaptive_ordering(self):
        workload = three_way_chain()
        config = small_config()
        config.adaptive_ordering = False
        engine = ACaching.for_workload(workload, config)
        assert engine.orderer is None
        engine.run(workload.updates(200))  # still processes fine
