"""Hypothesis properties for the scenario/trace/matrix stack.

Two properties the chaos matrix's byte-identity verdicts rest on:
batching commutes with fault injection (reordered faulted streams
produce the same chronology at any batch size), and a replayed trace is
a pure function of (trace, seed) — the same matrix cell digests
identically every time.
"""

from functools import partial

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.faults.chaos import _build_workload
from repro.faults.plan import FaultSpec
from repro.parallel.engine import (
    ParallelConfig,
    output_chronology,
    run_sharded,
)
from repro.scenarios import (
    build_named_scenario_workload,
    chronology_digest,
    record_trace,
)
from repro.scenarios.matrix import _cell_spec, run_matrix

ARRIVALS = 300
FACTORY = partial(_build_workload, "scenario:flash_crowd", ARRIVALS)


def _digest(fault_seed, batch_size):
    spec = _cell_spec(
        FACTORY,
        ARRIVALS,
        FaultSpec(duplicate_prob=0.01, reorder_prob=0.05),
        fault_seed,
        batch_size,
    )
    run = run_sharded(spec, ParallelConfig(shards=1, backend="serial"))
    return chronology_digest(output_chronology(run))


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    batch_size=st.integers(min_value=2, max_value=16),
)
def test_batching_commutes_with_fault_reordering(seed, batch_size):
    # A FaultPlan with reordering, replayed at batch_size > 1, is
    # byte-identical to the serial batch_size=1 run under the same plan:
    # batching changes *when* the engine sees updates, never *what*.
    assert _digest(seed, batch_size) == _digest(seed, 1)


@pytest.fixture(scope="module")
def trace_ref(tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "storm.jsonl"
    workload = build_named_scenario_workload("delete_storm", ARRIVALS)
    record_trace(workload, ARRIVALS, str(path))
    return f"trace:{path}"


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_replayed_trace_cell_digest_is_deterministic(trace_ref, seed):
    def cell_digest():
        payload = run_matrix(
            scenarios=[trace_ref],
            plans=["dup_reorder"],
            modes=["serial"],
            arrivals=ARRIVALS,
            seed=seed,
        )
        (cell,) = payload["cells"]
        assert cell["verdict"] == "PASS"
        return cell["digest"]

    assert cell_digest() == cell_digest()
