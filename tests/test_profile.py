"""The dual-clock span profiler: folding, quantiles, exports, overhead.

The invariants that make the profiler trustworthy: self times partition
inclusive time (so the folded file accounts for the whole run), both
clocks are recorded per span, the disabled path is inert, snapshots
survive pickling and merge with shard prefixes, and — critically —
profiling never perturbs the virtual-clock results it is measuring.
"""

import pickle
import pstats
import time
from functools import partial

import pytest

from repro.api import EngineConfig, Session
from repro.obs.profile import (
    NULL_PROFILER,
    ProfileSnapshot,
    SpanAggregate,
    SpanProfiler,
    disabled_overhead_fraction,
    noop_overhead_ns,
    write_folded,
    write_pstats,
)
from repro.streams.workloads import three_way_chain

CHAIN = partial(three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48)


def nested_profiler() -> SpanProfiler:
    prof = SpanProfiler()
    prof.begin("run", 0.0)
    prof.begin("update:R", 1.0)
    prof.begin("op", 2.0)
    prof.end(3.0)
    prof.end(4.0)
    prof.begin("update:S", 4.0)
    prof.end(6.0)
    prof.end(6.0)
    return prof


def test_nesting_folds_call_paths():
    snap = nested_profiler().snapshot()
    assert set(snap.folded) == {
        "run", "run;update:R", "run;update:R;op", "run;update:S",
    }
    assert snap.crossings == 4
    aggregates = snap.aggregates()
    assert aggregates["run"].count == 1
    assert aggregates["update:R"].virtual_us == pytest.approx(3.0)
    assert aggregates["update:S"].virtual_us == pytest.approx(2.0)


def test_self_times_partition_inclusive_time():
    snap = nested_profiler().snapshot()
    # Every ns of the root span's inclusive wall time is attributed to
    # exactly one path's self time — the folded file sums back to it.
    assert snap.root_self_ns("run") == snap.aggregates()["run"].wall_ns
    assert all(value >= 0 for value in snap.folded.values())


def test_end_without_begin_is_ignored():
    prof = SpanProfiler()
    prof.end(0.0)
    assert prof.snapshot().crossings == 0
    assert prof.depth == 0


def test_span_context_manager_closes_on_error():
    prof = SpanProfiler()
    with pytest.raises(RuntimeError):
        with prof.span("run"):
            raise RuntimeError("boom")
    assert prof.depth == 0
    assert "run" in prof.snapshot().folded


def test_quantiles_are_monotonic_bucket_midpoints():
    aggregate = SpanAggregate("x")
    for wall in (10, 100, 1_000, 10_000, 100_000):
        aggregate.observe(wall, wall, 0.0)
    p50 = aggregate.quantile_ns(0.50)
    p95 = aggregate.quantile_ns(0.95)
    p99 = aggregate.quantile_ns(0.99)
    assert 0 < p50 <= p95 <= p99
    assert SpanAggregate("empty").quantile_ns(0.99) == 0.0


def test_null_profiler_is_inert():
    assert NULL_PROFILER.enabled is False
    NULL_PROFILER.begin("x", 1.0)
    NULL_PROFILER.end(2.0)
    with NULL_PROFILER.span("x"):
        pass


def test_snapshot_pickles_and_merges_with_shard_prefixes():
    first = nested_profiler().snapshot()
    second = nested_profiler().snapshot()
    restored = pickle.loads(pickle.dumps(first))
    assert restored.folded == first.folded
    assert restored.spans == first.spans

    merged = ProfileSnapshot.merged(
        [first, second], prefixes=["shard 0", "shard 1"]
    )
    assert "shard 0;run;update:R;op" in merged.folded
    assert "shard 1;run;update:S" in merged.folded
    assert merged.aggregates()["run"].count == 2
    assert merged.crossings == first.crossings + second.crossings


def test_folded_and_pstats_exports(tmp_path):
    snap = nested_profiler().snapshot()
    folded_path = tmp_path / "flame.txt"
    written = write_folded(str(folded_path), snap)
    lines = folded_path.read_text().splitlines()
    assert written == len(lines) > 0
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    pstats_path = tmp_path / "spans.pstats"
    write_pstats(str(pstats_path), snap)
    stats = pstats.Stats(str(pstats_path))
    names = {key[2] for key in stats.stats}
    assert {"run", "update:R", "op"} <= names


def test_noop_overhead_is_tiny():
    per_pair = noop_overhead_ns(50_000)
    assert 0.0 <= per_pair < 1_000.0
    # A realistic crossing count over a 1-second run stays far under 3%.
    assert disabled_overhead_fraction(10_000, 1.0, per_pair_ns=per_pair) < 0.03
    assert disabled_overhead_fraction(10_000, 0.0) == 0.0
    with pytest.raises(ValueError):
        noop_overhead_ns(0)


def test_profiling_does_not_perturb_the_run():
    plain = Session.adaptive(CHAIN, EngineConfig())
    plain_outputs = plain.run(arrivals=400)
    profiled = Session.adaptive(CHAIN, EngineConfig(profile=True))
    profiled_outputs = profiled.run(arrivals=400)
    # Wall-clock instrumentation must be invisible to the virtual clock
    # and to the results.
    assert profiled.ctx.clock.now_us == plain.ctx.clock.now_us
    assert len(profiled_outputs) == len(plain_outputs)
    assert profiled.ctx.metrics.outputs_emitted == (
        plain.ctx.metrics.outputs_emitted
    )
    snap = profiled.profile_snapshot()
    assert snap is not None and "run" in snap.folded
    assert plain.profile_snapshot() is None


def test_run_span_covers_the_measured_wall_time():
    session = Session.adaptive(CHAIN, EngineConfig(profile=True))
    session.plan  # construct outside the timed region
    started = time.perf_counter()
    session.run(arrivals=600)
    wall = time.perf_counter() - started
    snap = session.profile_snapshot()
    coverage = snap.root_self_ns("run") / (wall * 1e9)
    # The acceptance bar is >= 95%; leave headroom for scheduler noise
    # on shared runners but still catch gross attribution gaps.
    assert 0.90 <= coverage <= 1.05
