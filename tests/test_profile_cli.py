"""``repro profile`` and ``repro bench --wall`` end to end.

The CLI is the observability story's front door: serial profiles must
emit run-rooted folded stacks and a loadable pstats dump, sharded
profiles must label every per-shard series, and the wall bench must
write a gateable BENCH_wall.json that the regression checker accepts.
"""

import json
import pstats
import subprocess
import sys
from pathlib import Path

from repro.cli import main

GATE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_wall_regression.py"
)


def run_gate(*argv):
    return subprocess.run(
        [sys.executable, str(GATE), *argv],
        capture_output=True,
        text=True,
    )


def test_profile_serial_emits_flame_pstats_and_coverage(tmp_path, capsys):
    flame = tmp_path / "flame.txt"
    pstats_path = tmp_path / "spans.pstats"
    code = main([
        "profile", "fig9-3way", "--arrivals", "600",
        "--flame", str(flame), "--pstats", str(pstats_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "span coverage" in out
    assert "update:R" in out
    lines = flame.read_text().splitlines()
    assert lines
    assert all(line.startswith("run") for line in lines)
    names = {key[2] for key in pstats.Stats(str(pstats_path)).stats}
    assert "run" in names


def test_profile_sharded_labels_every_shard(tmp_path, capsys):
    prom = tmp_path / "metrics.prom"
    flame = tmp_path / "flame.txt"
    code = main([
        "profile", "fig9-6way", "--arrivals", "2000", "--shards", "4",
        "--prometheus", str(prom), "--flame", str(flame),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "4 shards" in out
    dump = prom.read_text()
    for shard in range(4):
        assert f'repro_cache_probes_total{{shard="{shard}"}}' in dump
    folded = flame.read_text()
    for shard in range(4):
        assert f"shard {shard};run" in folded


def test_profile_unknown_experiment_fails_cleanly(capsys):
    assert main(["profile", "nope"]) == 1
    assert "unknown profile experiment" in capsys.readouterr().err


def test_profile_rejects_bad_batch_size(capsys):
    assert main(["profile", "demo", "--batch-size", "0"]) == 1
    assert "--batch-size" in capsys.readouterr().err


def test_bench_wall_writes_a_gateable_baseline(tmp_path, capsys):
    out_path = tmp_path / "wall.json"
    code = main([
        "bench", "--wall", "--arrivals", "600", "--repeats", "1",
        "--backend", "serial", "--out", str(out_path),
    ])
    assert code == 0
    assert "profiler overhead" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "wall"
    assert {p["mode"] for p in payload["points"]} == {
        "serial", "batched", "sharded",
    }
    overhead = payload["overhead"]
    assert overhead["span_crossings"] > 0
    assert 0.0 <= overhead["disabled_overhead_fraction"] <= (
        payload["tolerances"]["disabled_overhead_max"]
    )
    # Ranking within the table is load-dependent at this tiny scale;
    # membership is not.
    assert "run" in {row["span"] for row in payload["hotspots"]}

    # The freshly measured file passes the gate against itself.
    result = run_gate(str(out_path), "--baseline", str(out_path))
    assert result.returncode == 0, result.stdout + result.stderr


def wall_payload(disabled=0.01, serial_wall=1.0):
    return {
        "benchmark": "wall",
        "points": [
            {"mode": "serial", "wall_seconds": serial_wall},
            {"mode": "batched", "wall_seconds": serial_wall},
            {"mode": "sharded", "wall_seconds": serial_wall},
        ],
        "overhead": {"disabled_overhead_fraction": disabled},
        "tolerances": {
            "disabled_overhead_max": 0.03, "wall_rel_tol": 0.50,
        },
    }


def test_gate_fails_on_overhead_even_in_warn_only_mode(tmp_path):
    baseline = tmp_path / "baseline.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps(wall_payload()))
    fresh.write_text(json.dumps(wall_payload(disabled=0.10)))
    result = run_gate(str(fresh), "--baseline", str(baseline), "--warn-only")
    assert result.returncode == 1
    assert "exceeds" in result.stderr


def test_gate_downgrades_wall_drift_with_warn_only(tmp_path):
    baseline = tmp_path / "baseline.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps(wall_payload()))
    fresh.write_text(json.dumps(wall_payload(serial_wall=3.0)))
    strict = run_gate(str(fresh), "--baseline", str(baseline))
    assert strict.returncode == 1
    lenient = run_gate(str(fresh), "--baseline", str(baseline), "--warn-only")
    assert lenient.returncode == 0
    assert "warning" in lenient.stdout
