"""Tests for bench harness helpers and small stream-event utilities."""

import pytest

from repro.bench.harness import (
    ExperimentRow,
    format_rows,
    monotone_non_decreasing,
    monotone_non_increasing,
)
from repro.streams.events import TUPLE_BYTES, Sign, Update
from repro.streams.tuples import Row


class TestSign:
    def test_flipped(self):
        assert Sign.INSERT.flipped() is Sign.DELETE
        assert Sign.DELETE.flipped() is Sign.INSERT

    def test_int_values_sum_deltas(self):
        # Live result size = sum of signed deltas; the enum must be ±1.
        assert int(Sign.INSERT) == 1
        assert int(Sign.DELETE) == -1

    def test_paper_tuple_size(self):
        assert TUPLE_BYTES == 32  # "All input tuples are 32 bytes long"


class TestExperimentRow:
    def test_ratio_definition(self):
        row = ExperimentRow(x=1, caching_rate=200.0, mjoin_rate=100.0)
        # time ratio of caching to MJoin = rate(MJoin)/rate(caching)
        assert row.ratio == 0.5

    def test_zero_caching_rate(self):
        row = ExperimentRow(x=1, caching_rate=0.0, mjoin_rate=100.0)
        assert row.ratio == float("inf")


class TestFormatRows:
    def test_contains_all_columns(self):
        rows = [
            ExperimentRow(
                x=5, caching_rate=1000.0, mjoin_rate=800.0,
                extra={"hit_rate": 0.9},
            )
        ]
        text = format_rows("Title", "x label", rows, ("hit_rate",))
        assert "Title" in text
        assert "x label" in text
        assert "1,000" in text
        assert "0.9" in text
        assert "0.800" in text  # the ratio

    def test_missing_extra_rendered_empty(self):
        rows = [ExperimentRow(x=1, caching_rate=10.0, mjoin_rate=10.0)]
        text = format_rows("T", "x", rows, ("absent",))
        assert text  # renders without raising


class TestMonotoneHelpers:
    def test_non_increasing(self):
        assert monotone_non_increasing([5.0, 4.0, 4.1, 3.0], tolerance=0.05)
        assert not monotone_non_increasing([5.0, 6.0], tolerance=0.05)

    def test_non_decreasing(self):
        assert monotone_non_decreasing([1.0, 2.0, 1.95, 3.0], tolerance=0.05)
        assert not monotone_non_decreasing([2.0, 1.0], tolerance=0.05)

    def test_empty_and_single(self):
        assert monotone_non_increasing([])
        assert monotone_non_increasing([1.0])


class TestUpdateRepr:
    def test_compact_repr(self):
        update = Update("R", Row(3, (7,)), Sign.INSERT, 12)
        assert "R" in repr(update)
        assert "+" in repr(update)
