"""Validation and edge-case tests for workload construction."""

import pytest

from repro.errors import WorkloadError
from repro.relations.predicates import JoinGraph
from repro.streams.generators import StreamSpec, UniformValues
from repro.streams.tuples import Schema
from repro.streams.workloads import (
    Workload,
    fig7_workload,
    fig8_workload,
    fig9_workload,
    fig12_workload,
    three_way_chain,
)


def tiny_graph():
    return JoinGraph.parse(
        [Schema("A", ("k",)), Schema("B", ("k",))], ["A.k = B.k"]
    )


def spec(name):
    return StreamSpec(name, ("k",), {"k": UniformValues(8, seed=1)})


class TestWorkloadValidation:
    def test_missing_spec(self):
        with pytest.raises(WorkloadError, match="no stream spec"):
            Workload(
                name="w",
                graph=tiny_graph(),
                specs={"A": spec("A")},
                windows={"A": 4, "B": 4},
                rates={"A": 1.0, "B": 1.0},
            )

    def test_missing_window(self):
        with pytest.raises(WorkloadError, match="no window size"):
            Workload(
                name="w",
                graph=tiny_graph(),
                specs={"A": spec("A"), "B": spec("B")},
                windows={"A": 4},
                rates={"A": 1.0, "B": 1.0},
            )

    def test_missing_rate(self):
        with pytest.raises(WorkloadError, match="no rate"):
            Workload(
                name="w",
                graph=tiny_graph(),
                specs={"A": spec("A"), "B": spec("B")},
                windows={"A": 4, "B": 4},
                rates={"A": 1.0},
            )

    def test_updates_respect_window_bound(self):
        workload = Workload(
            name="w",
            graph=tiny_graph(),
            specs={"A": spec("A"), "B": spec("B")},
            windows={"A": 3, "B": 3},
            rates={"A": 1.0, "B": 1.0},
        )
        live = {"A": 0, "B": 0}
        for update in workload.updates(100):
            live[update.relation] += int(update.sign)
            assert live[update.relation] <= 3


class TestPaperWorkloadKnobs:
    def test_fig7_negative_selectivity_rejected(self):
        with pytest.raises(WorkloadError):
            fig7_workload(-1.0)

    def test_fig8_zero_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            fig8_workload(0.0)

    def test_fig9_two_way_minimum(self):
        with pytest.raises(WorkloadError):
            fig9_workload(1)

    def test_fig9_multiplicity_split(self):
        workload = fig9_workload(7)
        low = sum(1 for rate in workload.rates.values() if rate == 1.0)
        assert low == 3  # ⌊7/2⌋ streams at multiplicity (rate) 1

    def test_three_way_t_window_scales(self):
        workload = three_way_chain(t_multiplicity=4.0, window_r=50)
        assert workload.windows["T"] == 200

    def test_fig12_burst_kicks_in(self):
        workload = fig12_workload(burst_after_arrivals=100)
        before = [
            u.relation
            for u in workload.updates(90)
            if int(u.sign) == 1
        ]
        assert before.count("R") < 30
        later_workload = fig12_workload(burst_after_arrivals=100)
        later = [
            u.relation
            for u in later_workload.updates(400)
            if int(u.sign) == 1
        ]
        # Once bursting, ∆R dominates the tail.
        tail = later[-200:]
        assert tail.count("R") > 100
