"""Tests for the CSV/JSON experiment exporters."""

import csv
import io
import json

from repro.bench.harness import ExperimentRow
from repro.engine.reporting import (
    rows_to_csv,
    rows_to_dicts,
    rows_to_json,
    series_to_csv,
    series_to_dicts,
    write_text,
)
from repro.engine.runtime import SeriesPoint


def sample_rows():
    return [
        ExperimentRow(x=1, caching_rate=100.0, mjoin_rate=80.0,
                      extra={"hit_rate": 0.5}),
        ExperimentRow(x=2, caching_rate=200.0, mjoin_rate=80.0),
    ]


def sample_series():
    return [
        SeriesPoint(
            x=10, updates=100, window_throughput=5000.0,
            cumulative_throughput=4800.0, used_caches=("a", "b"),
            memory_bytes=1024,
        )
    ]


class TestRowExports:
    def test_dicts_include_ratio_and_extras(self):
        records = rows_to_dicts(sample_rows())
        assert records[0]["ratio"] == 0.8
        assert records[0]["extra_hit_rate"] == 0.5
        assert "extra_hit_rate" not in records[1]

    def test_csv_roundtrip(self):
        text = rows_to_csv(sample_rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert float(parsed[1]["caching_rate"]) == 200.0
        assert parsed[1]["extra_hit_rate"] == ""

    def test_json_parses(self):
        records = json.loads(rows_to_json(sample_rows()))
        assert records[0]["x"] == 1

    def test_empty(self):
        assert rows_to_csv([]) == ""
        assert json.loads(rows_to_json([])) == []


class TestSeriesExports:
    def test_series_dicts(self):
        records = series_to_dicts(sample_series())
        assert records[0]["used_caches"] == ["a", "b"]
        assert records[0]["memory_bytes"] == 1024

    def test_series_csv(self):
        text = series_to_csv(sample_series())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["used_caches"] == "a;b"

    def test_empty_series(self):
        assert series_to_csv([]) == ""


def test_write_text(tmp_path):
    path = tmp_path / "out.csv"
    write_text(str(path), "a,b\n1,2\n")
    assert path.read_text() == "a,b\n1,2\n"


def test_real_experiment_exports(tmp_path):
    """End to end: export a (tiny) real Figure 6 run."""
    from repro.bench import figures

    rows = figures.figure6(multiplicities=(1, 5), arrivals=1200)
    csv_text = rows_to_csv(rows)
    assert "caching_rate" in csv_text
    assert len(csv_text.strip().splitlines()) == 3
