"""Tests for the Section 4.1 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cost_model as cm
from repro.engine.clock import CostModel


def stats(
    segment_d=(100.0, 50.0),
    segment_c=(5.0, 6.0),
    d_out=40.0,
    miss_prob=0.3,
    maintenance_rate=30.0,
    **kwargs,
):
    return cm.CacheStatistics(
        segment_d=segment_d,
        segment_c=segment_c,
        d_out=d_out,
        miss_prob=miss_prob,
        maintenance_rate=maintenance_rate,
        **kwargs,
    )


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            stats(segment_d=(1.0,), segment_c=(1.0, 2.0))

    def test_empty_segment(self):
        with pytest.raises(ValueError):
            stats(segment_d=(), segment_c=())

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            stats(miss_prob=1.5)


class TestDerivedQuantities:
    def test_segment_work(self):
        s = stats()
        assert s.segment_work == pytest.approx(100 * 5 + 50 * 6)

    def test_probe_rate_is_first_operator(self):
        assert stats().d_probe == 100.0

    def test_tuples_per_entry(self):
        assert stats().tuples_per_entry == pytest.approx(0.4)
        assert stats(segment_d=(0.0, 0.0)).tuples_per_entry == 0.0


class TestFormulas:
    def test_benefit_is_work_minus_proc(self):
        s = stats()
        model = CostModel()
        assert cm.benefit(s, model) == pytest.approx(
            s.segment_work - cm.proc(s, model)
        )

    def test_net_benefit(self):
        s = stats()
        model = CostModel()
        assert cm.net_benefit(s, model) == pytest.approx(
            cm.benefit(s, model) - cm.cost(s, model)
        )

    def test_zero_miss_prob_minimizes_proc(self):
        model = CostModel()
        always_hit = stats(miss_prob=0.0)
        always_miss = stats(miss_prob=1.0)
        assert cm.proc(always_hit, model) < cm.proc(always_miss, model)

    def test_always_miss_cache_cannot_beat_recompute(self):
        """With miss_prob=1 the cache only adds overhead: benefit < 0."""
        model = CostModel()
        s = stats(miss_prob=1.0)
        assert cm.benefit(s, model) < 0

    def test_cost_scales_with_maintenance_rate(self):
        model = CostModel()
        light = stats(maintenance_rate=10.0)
        heavy = stats(maintenance_rate=1000.0)
        assert cm.cost(heavy, model) > cm.cost(light, model)

    def test_update_cost_grows_with_presence(self):
        model = CostModel()
        hot = stats(miss_prob=0.0)   # keys always present → deltas apply
        cold = stats(miss_prob=1.0)  # keys never cached → checks only
        assert cm.update_cost(hot, model) > cm.update_cost(cold, model)

    def test_expected_memory(self):
        model = CostModel()
        s = stats()
        memory = cm.expected_memory_bytes(
            s, model, expected_entries=100, segment_size=2
        )
        assert memory > 0
        assert cm.expected_memory_bytes(
            s, model, expected_entries=0, segment_size=2
        ) == 0.0


@settings(max_examples=60)
@given(
    d1=st.floats(1.0, 1e5),
    d2=st.floats(0.0, 1e5),
    c1=st.floats(0.1, 50.0),
    c2=st.floats(0.1, 50.0),
    d_out=st.floats(0.0, 1e5),
    miss=st.floats(0.0, 1.0),
    maintenance=st.floats(0.0, 1e5),
)
def test_benefit_monotone_in_miss_prob(d1, d2, c1, c2, d_out, miss, maintenance):
    """Property: a higher miss probability never decreases proc.

    Holds with the miss-independent per-probe terms pinned to zero; with
    the defaults, hit-emission cost and the presence-blended
    ``update_cost`` both shrink as misses rise, so the full model is
    deliberately non-monotone at extreme fan-outs.
    """
    model = CostModel(
        cache_maintain=0.0, cache_store_tuple=0.0, cache_hit_tuple=0.0
    )
    lower = cm.CacheStatistics(
        segment_d=(d1, d2), segment_c=(c1, c2), d_out=d_out,
        miss_prob=miss * 0.5, maintenance_rate=maintenance,
    )
    higher = cm.CacheStatistics(
        segment_d=(d1, d2), segment_c=(c1, c2), d_out=d_out,
        miss_prob=miss, maintenance_rate=maintenance,
    )
    # probe_cost also shrinks with higher miss (fewer hit emissions), so
    # compare the dominant term: proc must not decrease with miss prob.
    assert cm.proc(higher, model) >= cm.proc(lower, model) - 1e-6 or (
        d_out == 0.0
    )
