"""The ``repro bench`` command and its JSON baseline."""

import json

from repro.cli import main
from repro.parallel.bench import BENCH_SCHEMA_VERSION


def test_bench_writes_a_schema_versioned_baseline(tmp_path, capsys):
    out = tmp_path / "bench.json"
    argv = [
        "bench", "--shards", "1,2", "--arrivals", "1500",
        "--backend", "serial", "--out", str(out),
    ]
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    assert "parallel throughput bench" in stdout
    assert "speedup" in stdout

    payload = json.loads(out.read_text())
    assert payload["kind"] == "parallel_bench"
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    assert payload["arrivals"] == 1500
    assert payload["serial"]["modeled_throughput"] > 0
    assert [p["shards"] for p in payload["points"]] == [1, 2]
    for point in payload["points"]:
        assert set(point) >= {
            "modeled_speedup",
            "steady_speedup",
            "balance",
            "wall_seconds",
            "per_shard_updates",
            "partitioned",
            "broadcast",
        }
    # One shard of one is the serial computation itself.
    assert payload["points"][0]["modeled_speedup"] == 1.0
    # Sharding the 6-way star must actually help (no broadcast streams).
    assert payload["points"][1]["modeled_speedup"] > 1.5
    assert payload["points"][1]["broadcast"] == []


def test_bench_is_deterministic_modulo_wall_time(tmp_path, capsys):
    def run(path):
        assert (
            main(
                [
                    "bench", "--shards", "2", "--arrivals", "1000",
                    "--backend", "serial", "--out", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(path.read_text())
        # Wall time is the one machine-dependent field.
        payload["serial"].pop("wall_seconds")
        for point in payload["points"]:
            point.pop("wall_seconds")
        return payload

    assert run(tmp_path / "one.json") == run(tmp_path / "two.json")
