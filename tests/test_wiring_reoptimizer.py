"""Tests for cache wiring and the adaptive re-optimizer."""

import pytest

from repro.caching.global_cache import GlobalCache
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.candidates import enumerate_candidates
from repro.core.profiler import Profiler, ProfilerConfig
from repro.core.reoptimizer import (
    CandidateState,
    Reoptimizer,
    ReoptimizerConfig,
)
from repro.core.wiring import CacheWiring
from repro.errors import PlanError
from repro.mjoin.executor import MJoinExecutor
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import star_graph, three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}

FIGURE5_ORDERS = {
    "R1": ("R2", "R3", "R4", "R5", "R6"),
    "R2": ("R1", "R3", "R5", "R4", "R6"),
    "R3": ("R2", "R1", "R4", "R5", "R6"),
    "R4": ("R5", "R1", "R2", "R3", "R6"),
    "R5": ("R4", "R2", "R3", "R1", "R6"),
    "R6": ("R2", "R1", "R4", "R5", "R3"),
}


def chain_setup():
    workload = three_way_chain(t_multiplicity=3.0, window_r=24, window_s=24)
    executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
    candidates = {
        c.candidate_id: c
        for c in enumerate_candidates(
            workload.graph, executor.orders(), global_quota=8
        )
    }
    return workload, executor, candidates


class TestWiring:
    def test_attach_and_detach(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        wired = wiring.attach(candidates["T:0-1p"])
        assert wired.lookup_attached
        assert executor.pipelines["T"].active_lookups()
        # Maintenance taps in both member pipelines.
        assert executor.pipelines["R"]._updates
        assert executor.pipelines["S"]._updates
        wiring.detach("T:0-1p")
        assert not executor.pipelines["T"].active_lookups()
        assert not executor.pipelines["R"]._updates

    def test_global_candidate_gets_global_cache(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        global_id = next(
            cid for cid, c in candidates.items() if c.is_global
        )
        wired = wiring.attach(candidates[global_id])
        assert isinstance(wired.cache, GlobalCache)

    def test_owner_anchored_global_skips_own_tap(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        candidate = candidates["R:0-1g"]
        assert "R" in candidate.anchor
        wiring.attach(candidate)
        assert not executor.pipelines["R"]._updates  # no self-tap
        assert executor.pipelines["S"]._updates
        assert executor.pipelines["T"]._updates

    def test_suspend_and_resume(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        wiring.attach(candidates["T:0-1p"])
        wiring.suspend_lookup("T:0-1p")
        assert not executor.pipelines["T"].active_lookups()
        assert executor.pipelines["R"]._updates  # taps stay warm
        wiring.resume_lookup("T:0-1p")
        assert executor.pipelines["T"].active_lookups()

    def test_shared_instances_counted_once(self):
        graph = star_graph(6)
        executor = MJoinExecutor(graph, orders=FIGURE5_ORDERS)
        candidates = enumerate_candidates(
            graph, FIGURE5_ORDERS, global_quota=0
        )
        shared = [
            c
            for c in candidates
            if frozenset(c.segment) == frozenset({"R1", "R2"})
        ]
        assert len(shared) == 3
        wiring = CacheWiring(executor)
        wired = [wiring.attach(c) for c in shared]
        assert len({id(w.cache) for w in wired}) == 1  # one physical store
        # Dropping one user keeps the store; dropping all clears it.
        wiring.detach(shared[0].candidate_id)
        assert wiring.memory_bytes() >= 0
        assert wired[1].cache is wiring.wired[shared[1].candidate_id].cache
        wiring.detach_all()
        assert not wiring.wired

    def test_drop_touching(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        wiring.attach(candidates["T:0-1p"])
        dropped = wiring.drop_touching("R")  # R is in the maintenance set
        assert dropped == ["T:0-1p"]

    def test_owner_witness_counter(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        wired = wiring.attach(candidates["R:0-1g"])
        counter = wired.lookup.owner_witness_count
        assert counter is not None
        from repro.streams.tuples import RowFactory

        rows = RowFactory()
        r1 = rows.make((5,))
        r2 = rows.make((5,))
        executor.relations["R"].insert(r1)
        probe_key = wired.lookup.key.probe_value(
            __import__("repro.streams.tuples", fromlist=["CompositeTuple"])
            .CompositeTuple.of("R", r1)
        )
        assert counter(probe_key) == 1
        executor.relations["R"].insert(r2)
        assert counter(probe_key) == 2

    def test_prefix_cache_has_no_witness_counter(self):
        workload, executor, candidates = chain_setup()
        wiring = CacheWiring(executor)
        wired = wiring.attach(candidates["T:0-1p"])
        assert wired.lookup.owner_witness_count is None


class TestReoptimizer:
    def adaptive_engine(self, arrivals=6000, **reopt_kwargs):
        workload = three_way_chain(
            t_multiplicity=5.0, window_r=32, window_s=32
        )
        config = ACachingConfig(
            profiler=ProfilerConfig(
                window=4, profile_probability=0.1, bloom_window_tuples=24
            ),
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=1200,
                profiling_phase_updates=200,
                **reopt_kwargs,
            ),
            ordering=OrderingConfig(interval_updates=10**9),  # static orders
        )
        engine = ACaching(
            workload.graph,
            orders=CHAIN_ORDERS,
            config=config,
        )
        return workload, engine

    def test_bootstrap_states(self):
        workload, engine = self.adaptive_engine()
        states = engine.reoptimizer.states
        assert states
        assert all(s is CandidateState.PROFILED for s in states.values())

    def test_converges_to_profitable_cache(self):
        workload, engine = self.adaptive_engine()
        engine.run(workload.updates(6000))
        assert "T:0-1p" in engine.used_caches()
        assert engine.ctx.metrics.reoptimizations >= 1

    def test_change_threshold_suppresses_reruns(self):
        workload, engine = self.adaptive_engine(change_threshold=10.0)
        engine.run(workload.updates(6000))
        # A huge threshold lets at most the first selection through.
        assert engine.ctx.metrics.reoptimizations <= 1

    def test_on_reorder_drops_and_reenumerates(self):
        workload, engine = self.adaptive_engine()
        engine.run(workload.updates(6000))
        assert engine.used_caches()
        engine.executor.reorder_pipeline("S", ("T", "R"))
        engine.reoptimizer.on_reorder("S")
        # The {S,R} candidate dies with the new ∆S order.
        assert "T:0-1p" not in engine.reoptimizer.candidates
        assert engine.used_caches() == []

    def test_memory_budget_zero_blocks_caches(self):
        workload, engine = self.adaptive_engine(memory_budget_bytes=0)
        engine.run(workload.updates(6000))
        assert engine.used_caches() == []
        assert engine.memory_in_use() == 0

    def test_enforce_memory_detaches_over_budget(self):
        workload, engine = self.adaptive_engine()
        engine.run(workload.updates(6000))
        assert engine.used_caches()
        engine.reoptimizer.allocator.budget_bytes = 1  # shrink budget
        victims = engine.reoptimizer.enforce_memory()
        assert victims
        assert engine.memory_in_use() <= 1 or not engine.used_caches()
