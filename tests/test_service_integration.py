"""The streaming service end to end, over real sockets.

Each scenario boots a :class:`ServiceThread` on an ephemeral port and
drives it with the stdlib :class:`ServiceClient`. The chain workload's
schemas are R(A), S(A, B), T(B); a "matching triple" ``[R(v), S(v, v),
T(v)]`` joins end to end, so every third update emits a result delta.
"""

import threading
import time

import pytest

from repro.api import EngineConfig
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)

CHAIN = {
    "kind": "chain",
    "params": {"window_r": 32, "window_s": 32, "window_t": 32},
}


def _triple(value):
    return [["R", [value]], ["S", [value, value]], ["T", [value]]]


def _wait(predicate, timeout_s=20.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _wait_processed(client, query, seq):
    assert _wait(
        lambda: client.status(query)["processed_seq"] >= seq
    ), f"engine never reached seq {seq}"


@pytest.fixture()
def service():
    thread = ServiceThread(ServiceConfig())
    thread.start()
    try:
        yield thread
    finally:
        thread.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(service.base_url)


# ----------------------------------------------------------------------
# Registration and the request surface
# ----------------------------------------------------------------------
def test_register_ingest_results_roundtrip(client):
    status = client.register("q", CHAIN)
    assert status["query"] == "q"
    assert status["schema"] == {"R": ["A"], "S": ["A", "B"], "T": ["B"]}

    ack_status, ack = client.ingest("q", _triple(1))
    assert ack_status == 202
    assert (ack["seq_first"], ack["seq_last"]) == (0, 2)
    assert ack["durable"] is False  # no wal_root on this config

    _wait_processed(client, "q", 2)
    results = client.results("q")
    assert [e["seq"] for e in results["entries"]] == [0, 1, 2]
    # Only the triple-completing T insert emits the join result.
    assert results["entries"][0]["deltas"] == []
    [[sign, rows]] = results["entries"][2]["deltas"]
    assert sign == 1
    assert sorted(rows) == [["R", [1]], ["S", [1, 1]], ["T", [1]]]

    assert client.healthz()["status"] == "ok"
    ready, _ = client.readyz()
    assert ready
    assert "repro_service_queue_depth_updates" in client.metrics_text()


def test_register_is_idempotent_and_conflicts_are_409(client):
    client.register("q", CHAIN)
    assert client.register("q", CHAIN)["query"] == "q"  # same spec: 200
    with pytest.raises(Exception) as err:
        client.register("q", {"kind": "chain", "params": {"window_r": 64}})
    assert "409" in str(err.value) or "different spec" in str(err.value)


def test_ingest_validation_is_a_400_not_a_quarantine(client):
    client.register("q", CHAIN)
    bad = [
        [["Z", [1]]],            # unknown relation
        [["R", [1, 2]]],         # R takes one value
        [["S", [1]]],            # S takes two
        [["R", [True]]],         # bools are not data
        [["R", None]],           # values must be a list
        [],                      # empty batch
        "nope",                  # arrivals must be a list
    ]
    for arrivals in bad:
        # Raw POST: some of these the client helper would refuse to
        # serialize, and the server must 400 them all the same.
        status, _, data = client._request(
            "POST", "/v1/queries/q/ingest",
            body={"tenant": "t", "arrivals": arrivals},
        )
        assert status == 400, (arrivals, data)
    # Nothing reached the windows or the engine.
    assert client.status("q")["acked_seq"] == -1


def test_idempotency_key_replays_instead_of_reingesting(client):
    client.register("q", CHAIN)
    first_status, first = client.ingest(
        "q", _triple(5), idempotency_key="abc"
    )
    replay_status, replay = client.ingest(
        "q", _triple(5), idempotency_key="abc"
    )
    assert (first_status, replay_status) == (202, 202)
    assert replay["replayed"] is True
    assert (replay["seq_first"], replay["seq_last"]) == (
        first["seq_first"], first["seq_last"],
    )
    _wait_processed(client, "q", first["seq_last"])
    # The batch went in exactly once.
    assert client.status("q")["acked_seq"] == first["seq_last"]


# ----------------------------------------------------------------------
# Backpressure: the acceptance-criterion test
# ----------------------------------------------------------------------
def test_429_issued_before_any_queue_overflow():
    """With the engine wedged, ingest keeps getting 202s while the
    bounded queue has room and a 429 the moment it does not — and no
    accepted update is ever dropped.

    Deterministic by construction: the engine executor is blocked on an
    event, so queue depth moves only when the (serial) test ingests.
    """
    config = ServiceConfig(
        queue_capacity_updates=60,
        tenant_rate=1e9, tenant_burst=1e9,   # admission out of the way
        # Keep the degradation ladder's own 503 out of the way too: this
        # test pins down the queue-full 429 specifically.
        reject_depth_fraction=1.0,
        shed_lag_s=3600.0, pause_lag_s=3600.0, reject_lag_s=3600.0,
    )
    thread = ServiceThread(config)
    thread.start()
    release = threading.Event()
    try:
        client = ServiceClient(thread.base_url)
        client.register("q", CHAIN)
        host = thread.service.hosts["q"]

        thread.service._engine_exec.submit(release.wait)

        # Worst-case reservation is 2 updates per arrival; each triple
        # actually lands 3 updates. Capacity 60 admits exactly 19
        # batches (57 queued updates; the 20th would need 6 more).
        acks = []
        rejection = None
        for i in range(25):
            status, payload = client.ingest(
                "q", _triple(i), retry=False
            )
            if status == 202:
                assert rejection is None, "202 after a 429"
                acks.append(payload)
            else:
                rejection = (status, payload)
                break
        assert [a["seq_last"] for a in acks][-1] == 56
        assert rejection is not None
        assert rejection[0] == 429
        assert rejection[1]["error"] == "queue_full"
        assert rejection[1]["retry_after_s"] > 0

        # The 429 fired while the queue was still within its bound.
        assert host.queue.depth_updates == 57 <= config.queue_capacity_updates

        # Un-wedge the engine: every acknowledged update must surface.
        release.set()
        _wait_processed(client, "q", 56)
        assert client.status("q")["queue_depth_updates"] == 0
        results = client.results("q", limit=100)
        assert [e["seq"] for e in results["entries"]] == list(range(57))
    finally:
        release.set()  # un-wedge even on assertion failure, or stop() waits
        thread.stop()


def test_degradation_ladder_recovers_after_burst():
    config = ServiceConfig(
        queue_capacity_updates=30,
        tenant_rate=1e9, tenant_burst=1e9,
    )
    thread = ServiceThread(config)
    thread.start()
    release = threading.Event()
    try:
        client = ServiceClient(thread.base_url)
        client.register("q", CHAIN)
        thread.service._engine_exec.submit(release.wait)
        for i in range(9):  # 27/30 updates: deep into the ladder
            status, _ = client.ingest("q", _triple(i), retry=False)
            assert status == 202
        assert client.status("q")["tier"] != "normal"
        release.set()
        _wait_processed(client, "q", 26)
        assert _wait(lambda: client.status("q")["tier"] == "normal")
        ready, _ = client.readyz()
        assert ready
    finally:
        release.set()
        thread.stop()


# ----------------------------------------------------------------------
# Subscriptions
# ----------------------------------------------------------------------
def test_subscription_streams_deltas_and_backfills(service, client):
    client.register("q", CHAIN)
    client.ingest("q", _triple(1))
    _wait_processed(client, "q", 2)

    with client.subscribe("q", since_seq=-1) as sub:
        frame = sub.recv()
        assert frame["type"] == "deltas"
        assert frame.get("backfill") is True
        assert [e["seq"] for e in frame["entries"]] == [2]

        client.ingest("q", _triple(2))
        live = sub.recv()
        assert live["type"] == "deltas"
        assert live["seq_last"] == 5
        assert not live.get("gap")
    # Subscriber detaches cleanly.
    assert _wait(lambda: client.status("q")["subscribers"] == 0)


def test_subscription_flow_control_blocks_until_credits():
    # One initial credit: the server must stop after one data frame and
    # wait for a grant instead of flooding the subscriber.
    thread = ServiceThread(ServiceConfig(subscriber_initial_credits=1))
    thread.start()
    try:
        client = ServiceClient(thread.base_url)
        client.register("q", CHAIN)
        # A huge negative low-water disables the client's auto-grant so
        # the test controls every credit by hand.
        sub = client.subscribe("q", credit_low_water=-(10 ** 9))
        try:
            assert _wait(lambda: client.status("q")["subscribers"] == 1)
            client.ingest("q", _triple(1))
            first = sub.recv()
            assert first["type"] == "deltas"
            # The only credit is spent; the next batch must block.
            client.ingest("q", _triple(2))
            waiting = sub.recv()
            assert waiting == {"type": "flow", "state": "credit_wait"}
            sub.grant(10)
            second = sub.recv()
            assert second["type"] == "deltas"
            assert second["seq_last"] == 5
        finally:
            sub.close()
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
def test_drain_completes_work_then_rejects_new(service, client):
    client.register("q", CHAIN)
    client.ingest("q", _triple(1))
    summary = client.drain()
    assert summary["drained"] == {"q": True}
    ready, body = client.readyz()
    assert not ready and body["reason"] == "draining"
    status, payload = client.ingest("q", _triple(2), retry=False)
    assert status == 503 and payload["error"] == "draining"
    with pytest.raises(Exception):
        client.register("q2", CHAIN)
    # Drained means processed: the pre-drain triple is in the log.
    assert client.status("q")["processed_seq"] == 2


# ----------------------------------------------------------------------
# Durability: kill -9 and recover
# ----------------------------------------------------------------------
def test_kill_then_recover_preserves_every_acked_delta(tmp_path):
    root = str(tmp_path / "wal")
    config = ServiceConfig(wal_root=root, checkpoint_interval=20)
    thread = ServiceThread(config)
    thread.start()
    client = ServiceClient(thread.base_url)
    client.register("q", CHAIN)
    acked_last = -1
    for i in range(30):
        status, ack = client.ingest("q", _triple(i))
        assert status == 202 and ack["durable"] is True
        acked_last = ack["seq_last"]
    _wait_processed(client, "q", acked_last)
    before = client.results("q", limit=1000)["entries"]
    thread.kill()  # no drain, no checkpoint, journal truncated to fsync

    revived = ServiceThread(ServiceConfig(wal_root=root))
    revived.start()
    try:
        client2 = ServiceClient(revived.base_url)
        status = client2.status("q")  # re-hosted from the journal root
        assert status["resumed"] is True
        assert status["acked_seq"] == acked_last
        after = client2.results("q", limit=1000)["entries"]
        acked_before = [e for e in before if e["seq"] <= acked_last]
        assert after == acked_before  # byte-identical acked history

        # Sequence numbering and processing continue where they left off.
        status2, ack = client2.ingest("q", _triple(99))
        assert status2 == 202
        assert ack["seq_first"] == acked_last + 1
        _wait_processed(client2, "q", ack["seq_last"])
    finally:
        revived.stop()
