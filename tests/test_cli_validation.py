"""CLI hardening: bad values surface as `error: ...` + exit 1."""

import pytest

from repro.cli import main


def assert_clean_error(capsys, argv, fragment):
    assert main(argv) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert fragment in err
    assert "Traceback" not in err


def test_unknown_figure_name(capsys):
    assert_clean_error(capsys, ["figure", "fig99"], "fig99")


def test_unknown_spectrum_point(capsys):
    assert_clean_error(capsys, ["spectrum", "D9"], "D9")


@pytest.mark.parametrize("value", ["0", "-5"])
def test_nonpositive_arrivals(capsys, value):
    assert_clean_error(
        capsys, ["figure", "fig6", "--arrivals", value], "--arrivals"
    )
    assert_clean_error(capsys, ["demo", "--arrivals", value], "--arrivals")


def test_bad_shard_count(capsys):
    assert_clean_error(capsys, ["demo", "--shards", "0"], "shard count")
    assert_clean_error(
        capsys, ["figure", "fig6", "--shards", "-1"], "shard count"
    )


def test_bad_parallel_backend(capsys):
    assert_clean_error(
        capsys, ["demo", "--parallel-backend", "threads"], "backend"
    )


def test_chaos_flags_validated_before_running(capsys):
    assert_clean_error(capsys, ["chaos", "demo", "--shards", "0"], "shard")
    assert_clean_error(
        capsys, ["chaos", "demo", "--arrivals", "-1"], "--arrivals"
    )


def test_bench_shard_list_validation(capsys):
    assert_clean_error(capsys, ["bench", "--shards", "1,x"], "--shards")
    assert_clean_error(capsys, ["bench", "--shards", "0,2"], ">= 1")
    assert_clean_error(capsys, ["bench", "--shards", " , "], "--shards")
    assert_clean_error(capsys, ["bench", "--backend", "gpu"], "--backend")
    assert_clean_error(capsys, ["bench", "--arrivals", "0"], "--arrivals")


def test_sharded_demo_runs_clean(capsys):
    assert (
        main(["demo", "--arrivals", "500", "--shards", "2"]) == 0
    )
    out = capsys.readouterr().out
    assert "2 shards" in out
    assert "A-Caching" in out


def test_sharded_chaos_runs_clean(capsys):
    assert (
        main(["chaos", "demo", "--arrivals", "600", "--shards", "2"]) == 0
    )
    out = capsys.readouterr().out
    assert "2 shards (serial)" in out
