"""The global adaptivity plane: sharded selection equals serial selection.

The coordinator merges per-shard profiler snapshots (rates summed, δ/τ
windows pooled) and runs the paper's selection once per epoch, so a
sharded run must choose the same caches a serial run does — the
property the plane exists to restore. Alongside the end-to-end
property: the barrier protocol's unit semantics (decided epochs
answered from the log, retirement shrinking barriers) and the
rate-aware rescale trigger.
"""

from functools import partial
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig
from repro.core.acaching import ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.errors import ParallelError
from repro.parallel.adaptivity import (
    AdaptivityConfig,
    EpochCoordinator,
    RescalePolicy,
    recommend_rescale,
    snapshot_from_plan,
)
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.parallel.supervisor import (
    SupervisionConfig,
    Supervisor,
    WorkerCrash,
)
from repro.streams.workloads import fig9_workload

SYNC = 200

FAST_SUPERVISION = SupervisionConfig(
    heartbeat_every_updates=50,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
)


def _config():
    # The determinism the selection-equivalence property needs: the
    # profile gate samples by global seq (so every worker and the serial
    # run profile the same update set), local re-opt runs on the same
    # update cadence the coordinator epochs use, and pipeline orders
    # stay pinned so selection is the only moving part.
    return ACachingConfig(
        profiler=ProfilerConfig(
            deterministic_gate=True,
            # Warm every candidate within the first epochs at test
            # scale (the 5% paper default needs far longer streams).
            profile_probability=0.5,
        ),
        reoptimizer=ReoptimizerConfig(reopt_interval_updates=SYNC),
        adaptive_ordering=False,
    )


def _spec(arrivals, relations=4, **overrides):
    base = dict(
        workload_factory=partial(fig9_workload, relations, window=48),
        arrivals=arrivals,
        engine=EngineSpec(kind="acaching", config=_config()),
        adaptivity=AdaptivityConfig(sync_every_updates=SYNC),
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# ---------------------------------------------------------------------------
# the barrier protocol, transport-free
# ---------------------------------------------------------------------------
def _snapshot(plan, shard, epoch):
    return snapshot_from_plan(plan, shard=shard, epoch=epoch)


@pytest.fixture(scope="module")
def fresh_plan():
    spec = _spec(400)
    return spec.engine.build(spec.workload_factory())


def test_barrier_completes_when_every_active_shard_arrives(fresh_plan):
    coordinator = EpochCoordinator(_spec(400), 2)
    assert coordinator.submit(1, 0, _snapshot(fresh_plan, 0, 1)) == []
    assert coordinator.waiting == {0}
    deliveries = coordinator.submit(1, 1, _snapshot(fresh_plan, 1, 1))
    assert sorted(shard for shard, _ in deliveries) == [0, 1]
    plans = {plan.epoch for _, plan in deliveries}
    assert plans == {1}
    assert coordinator.waiting == set()


def test_decided_epoch_answers_a_restarted_shard_immediately(fresh_plan):
    coordinator = EpochCoordinator(_spec(400), 2)
    coordinator.submit(1, 0, _snapshot(fresh_plan, 0, 1))
    coordinator.submit(1, 1, _snapshot(fresh_plan, 1, 1))
    # A supervisor-restarted worker re-traverses the stream and hits the
    # epoch-1 barrier again: it must get the logged plan without
    # re-opening the barrier for anyone else.
    replay = coordinator.submit(1, 0, _snapshot(fresh_plan, 0, 1))
    assert [shard for shard, _ in replay] == [0]
    assert replay[0][1] is coordinator.plans[1]


def test_retiring_a_shard_unblocks_the_survivors(fresh_plan):
    coordinator = EpochCoordinator(_spec(400), 2)
    assert coordinator.submit(1, 0, _snapshot(fresh_plan, 0, 1)) == []
    # Shard 1 degrades to in-parent serial execution: its retirement
    # must complete the barrier shard 0 is already waiting in.
    deliveries = coordinator.retire(1)
    assert [shard for shard, _ in deliveries] == [0]
    assert coordinator.active == {0}


def test_retiring_a_straggler_logs_an_epoch_stall(fresh_plan):
    coordinator = EpochCoordinator(_spec(400), 2)
    coordinator.submit(1, 0, _snapshot(fresh_plan, 0, 1))
    coordinator.retire(1)
    stalls = [
        record
        for record in coordinator.decisions.entries()
        if record.action == "epoch_stall"
    ]
    assert len(stalls) == 1
    # The decision names the culprit shard and the epoch it hung.
    assert "shard 1" in stalls[0].reason
    assert "[1]" in stalls[0].reason
    # Re-retiring, or retiring with nothing pending, logs nothing new.
    coordinator.retire(1)
    fresh = EpochCoordinator(_spec(400), 2)
    fresh.retire(0)
    assert sum(
        1
        for c in (coordinator, fresh)
        for r in c.decisions.entries()
        if r.action == "epoch_stall"
    ) == 1


def test_coordinator_rejects_non_acaching_engines():
    spec = _spec(400)
    bare = ExperimentSpec(
        workload_factory=spec.workload_factory,
        arrivals=400,
        engine=EngineSpec(kind="mjoin"),
    )
    with pytest.raises(ParallelError, match="acaching"):
        EpochCoordinator(bare, 2)


def test_adaptivity_config_validates():
    with pytest.raises(ParallelError, match="sync_every_updates"):
        AdaptivityConfig(sync_every_updates=0)
    with pytest.raises(ParallelError, match="acaching"):
        _spec(400, engine=EngineSpec(kind="mjoin"))


# ---------------------------------------------------------------------------
# end to end: sharded selection equals serial selection
# ---------------------------------------------------------------------------
@settings(
    max_examples=4,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    shards=st.sampled_from([2, 3, 4]),
    relations=st.sampled_from([3, 4]),
)
def test_coordinated_selection_matches_serial(shards, relations):
    spec = _spec(800, relations)
    serial = run_sharded(spec, ParallelConfig(shards=1))
    sharded = run_sharded(
        spec, ParallelConfig(shards=shards, backend="serial")
    )
    assert sharded.cache_plans, "no epoch was ever coordinated"
    assert set(sharded.stats.used_caches) == set(serial.stats.used_caches)
    assert any(plan.applied for plan in sharded.cache_plans), (
        "the coordinator never selected a cache at this scale — the "
        "equivalence above was vacuous"
    )
    assert sharded.stats.hit_rate > 0.0


def test_epoch_plans_are_invariant_to_the_shard_count():
    # Summed rates scale every d-term uniformly, so the coordinator's
    # per-epoch choices must not depend on how many ways the stream is
    # split — not just the final cache set, every boundary's.
    spec = _spec(800)
    two = run_sharded(spec, ParallelConfig(shards=2, backend="serial"))
    four = run_sharded(spec, ParallelConfig(shards=4, backend="serial"))
    assert [
        (plan.epoch, plan.candidate_ids) for plan in two.cache_plans
    ] == [(plan.epoch, plan.candidate_ids) for plan in four.cache_plans]


def test_process_backend_matches_thread_backend():
    spec = _spec(600)
    threaded = run_sharded(spec, ParallelConfig(shards=2, backend="serial"))
    processed = run_sharded(
        spec, ParallelConfig(shards=2, backend="process")
    )
    assert [
        (plan.epoch, plan.candidate_ids) for plan in threaded.cache_plans
    ] == [(plan.epoch, plan.candidate_ids) for plan in processed.cache_plans]
    assert processed.stats.used_caches == threaded.stats.used_caches


def test_restarted_worker_rejoins_coordination(tmp_path):
    spec = _spec(
        600, output_mode="canonical", collect_windows=True
    )
    clean = run_sharded(spec, ParallelConfig(shards=2, backend="serial"))
    recovery = EngineConfig(
        shards=2, wal_dir=str(tmp_path), checkpoint_interval=100
    ).recovery()
    run = Supervisor(FAST_SUPERVISION, recovery=recovery).run(
        spec, 2, crashes=[WorkerCrash(shard=1, after_updates=150)]
    )
    assert run.restarts == {1: 1}
    assert run.cache_plans, "the supervised run never coordinated"
    assert run.merged_canonical() == clean.merged_canonical()
    assert run.merged_windows() == clean.merged_windows()
    assert set(run.stats.used_caches) == set(clean.stats.used_caches)


# ---------------------------------------------------------------------------
# the rescale trigger
# ---------------------------------------------------------------------------
def _stats(per_shard_updates, per_shard_clock_us):
    return SimpleNamespace(
        shard_count=len(per_shard_updates),
        per_shard_updates=per_shard_updates,
        per_shard_clock_us=per_shard_clock_us,
    )


def test_recommend_rescale_scales_up_under_load():
    # Two shards each sustaining 60k updates/s against a 40k target:
    # 120k demand with 1.25x headroom wants four shards.
    advice = recommend_rescale(_stats([60_000, 60_000], [1e6, 1e6]))
    assert advice.action == "scale-up"
    assert advice.recommended_shards == 4
    assert advice.should_rescale


def test_recommend_rescale_scales_down_when_idle():
    advice = recommend_rescale(_stats([5_000, 5_000, 5_000, 5_000],
                                      [1e6, 1e6, 1e6, 1e6]))
    assert advice.action == "scale-down"
    assert advice.recommended_shards == 1


def test_recommend_rescale_hysteresis_suppresses_one_shard_moves():
    stats = _stats([45_000, 45_000], [1e6, 1e6])
    assert recommend_rescale(stats).action == "scale-up"
    held = recommend_rescale(stats, RescalePolicy(hysteresis=1))
    assert held.action == "hold"
    assert not held.should_rescale


def test_rescale_policy_validates():
    with pytest.raises(ParallelError):
        RescalePolicy(target_shard_rate=0.0)
    with pytest.raises(ParallelError):
        RescalePolicy(min_shards=4, max_shards=2)
