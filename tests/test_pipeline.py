"""Tests for pipeline execution, taps, bypass rules, and profiling mode."""

import pytest

from repro.caching.cache import Cache
from repro.caching.key import CacheKey
from repro.errors import PlanError
from repro.mjoin.executor import MJoinExecutor
from repro.operators.base import ExecContext
from repro.operators.cache_ops import CacheLookup, CacheUpdate
from repro.operators.pipeline import Pipeline
from repro.streams.events import Sign, Update
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def setup_executor():
    workload = three_way_chain(t_multiplicity=3.0, window_r=16, window_s=16)
    executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
    return workload, executor


def make_cache(graph):
    key = CacheKey(graph, ("T",), ("S", "R"))
    return Cache("c", "T", ("S", "R"), key, buckets=64)


class TestPlumbingValidation:
    def test_overlapping_lookups_rejected(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        pipeline = executor.pipelines["T"]
        pipeline.attach_lookup(CacheLookup(cache, 0, 1))
        with pytest.raises(PlanError, match="overlap"):
            pipeline.attach_lookup(CacheLookup(cache, 1, 1))

    def test_lookup_past_pipeline_rejected(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        with pytest.raises(PlanError):
            executor.pipelines["T"].attach_lookup(CacheLookup(cache, 0, 5))

    def test_tap_inside_bypass_rejected_both_ways(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        pipeline = executor.pipelines["T"]
        pipeline.attach_lookup(CacheLookup(cache, 0, 1))
        with pytest.raises(PlanError, match="prefix invariant"):
            pipeline.attach_update(CacheUpdate(cache, 1, "T"))
        pipeline.detach_lookup("c")
        pipeline.attach_update(CacheUpdate(cache, 1, "T"))
        with pytest.raises(PlanError, match="prefix invariant"):
            pipeline.attach_lookup(CacheLookup(cache, 0, 1))

    def test_tap_at_lookup_start_allowed(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        pipeline = executor.pipelines["T"]
        pipeline.attach_update(CacheUpdate(cache, 0, "T"))
        pipeline.attach_lookup(CacheLookup(cache, 0, 1))  # start slot is ok

    def test_detach_missing_returns_false(self):
        workload, executor = setup_executor()
        assert not executor.pipelines["T"].detach_lookup("ghost")
        assert executor.pipelines["T"].detach_updates("ghost") == 0
        assert executor.pipelines["T"].detach_bloom("ghost") == 0

    def test_clear_plumbing(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        pipeline = executor.pipelines["T"]
        pipeline.attach_lookup(CacheLookup(cache, 0, 1))
        pipeline.clear_plumbing()
        assert not pipeline.active_lookups()


class TestProfileMode:
    def test_profiled_tuple_bypasses_caches(self):
        workload, executor = setup_executor()
        cache = make_cache(workload.graph)
        executor.pipelines["T"].attach_lookup(CacheLookup(cache, 0, 1))
        ctx = executor.ctx
        updates = [u for u in workload.updates(200)]
        t_update = next(u for u in updates if u.relation == "T")
        # Warm relations first.
        for update in updates:
            executor.process(update)
        probes_before = cache.probes
        composites, sample = executor.pipelines["T"].process(
            t_update.row, Sign.INSERT, ctx, profile=True
        )
        assert cache.probes == probes_before  # no probe in profile mode
        assert sample is not None
        assert len(sample.deltas) == 3  # slots 0, 1, outputs
        assert len(sample.taus) == 2

    def test_profile_sample_counts_outputs(self):
        workload, executor = setup_executor()
        ctx = executor.ctx
        for update in workload.updates(300):
            executor.process(update)
        t_pipeline = executor.pipelines["T"]
        row = next(
            u.row for u in workload.updates(10) if u.relation == "T"
        )
        composites, sample = t_pipeline.process(
            row, Sign.INSERT, ctx, profile=True
        )
        assert sample.deltas[-1] == len(composites)


class TestPositionHelpers:
    def test_order_and_position(self):
        workload, executor = setup_executor()
        pipeline = executor.pipelines["T"]
        assert pipeline.order == ("S", "R")
        assert pipeline.position_of("R") == 1
        with pytest.raises(PlanError):
            pipeline.position_of("T")
