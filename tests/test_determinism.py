"""Reproducibility: identical configurations yield identical runs.

The whole stack is seeded (generators, profiler sampling, LP rounding),
so two runs of the same experiment must agree bit-for-bit — the property
EXPERIMENTS.md relies on when recording reference numbers.
"""

from repro.core.acaching import ACaching, ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import table2_workload, three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def run_once():
    workload = three_way_chain(t_multiplicity=5.0, window_r=32, window_s=32)
    config = ACachingConfig(
        profiler=ProfilerConfig(
            window=4, profile_probability=0.1, bloom_window_tuples=24
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1200, profiling_phase_updates=200
        ),
        ordering=OrderingConfig(interval_updates=1000),
    )
    engine = ACaching(workload.graph, orders=CHAIN_ORDERS, config=config)
    outputs = engine.run(workload.updates(5000))
    return (
        engine.ctx.clock.now_us,
        engine.ctx.metrics.updates_processed,
        engine.ctx.metrics.cache_hits,
        engine.ctx.metrics.reoptimizations,
        tuple(sorted(engine.used_caches())),
        len(outputs),
    )


def test_adaptive_runs_are_bit_identical():
    assert run_once() == run_once()


def test_workload_streams_are_deterministic():
    a = [
        (u.relation, u.sign, u.row.values)
        for u in table2_workload("D5").updates(500)
    ]
    b = [
        (u.relation, u.sign, u.row.values)
        for u in table2_workload("D5").updates(500)
    ]
    assert a == b


def test_distinct_seeds_differ():
    a = [u.row.values for u in table2_workload("D5", seed=1).updates(300)]
    b = [u.row.values for u in table2_workload("D5", seed=2).updates(300)]
    assert a != b
