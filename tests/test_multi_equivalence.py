"""Property: multi-query hosting is byte-identical to independent engines.

The tenancy contract (ISSUE 8's hard guarantee): N queries registered on
one :class:`~repro.multi.engine.MultiQueryEngine` — sharing windows,
sharing subresult caches, arbitrated by one global memory budget — emit
exactly the per-query delta sequences (rids included) that N independent
engines emit over the same update stream. Holds with sharing on or off,
against serial and sharded independent baselines, under a global memory
budget tight enough to force evictions, and across runtime add/remove of
queries mid-stream (the added query matches a fresh engine warmed from
the shared windows; removing the tap-hosting query re-homes maintenance
without perturbing survivors).
"""

from functools import partial

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, Session, build_adaptive_engine
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.multi.engine import MultiQueryEngine
from repro.parallel.engine import run_sharded
from repro.relations.relation import Relation
from repro.streams.events import Sign
from repro.streams.workloads import fig9_workload, three_way_chain

WORKLOADS = {
    "chain": partial(
        three_way_chain, t_multiplicity=4.0, window_r=48, window_s=48
    ),
    "star3": partial(fig9_workload, 3, window=24),
    "star4": partial(fig9_workload, 4, window=24),
}


def tuned_config(budget_bytes=None):
    """Adaptive tunables that actually attach caches in short runs.

    The defaults pace re-optimization on virtual seconds, which a few
    hundred deterministic updates never reach.
    """
    return EngineConfig(
        tuning=ACachingConfig(
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=120,
                profiling_phase_updates=60,
                memory_budget_bytes=budget_bytes,
            )
        )
    )


def exact_delta(delta):
    """A rid-preserving identity for one emitted OutputDelta."""
    composite = delta.composite
    return (
        delta.sign,
        tuple(
            (name, composite.row(name).rid, composite.row(name).values)
            for name in sorted(composite.relations())
        ),
    )


def exact(deltas):
    return [exact_delta(d) for d in deltas]


def independent_run(workload_key, updates, config):
    engine = build_adaptive_engine(WORKLOADS[workload_key](), config)
    return exact(engine.run(iter(updates)))


def multi_run(workload_key, updates, n_queries, config, share):
    engine = MultiQueryEngine(
        budget_bytes=config.acaching_config().reoptimizer.memory_budget_bytes,
        share_caches=share,
    )
    ids = [f"q{i + 1}" for i in range(n_queries)]
    for query_id in ids:
        engine.register(query_id, WORKLOADS[workload_key](), config)
    deltas = engine.run(updates)
    return {query_id: exact(deltas[query_id]) for query_id in ids}


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(sorted(WORKLOADS)),
    n_queries=st.integers(min_value=2, max_value=3),
    arrivals=st.integers(min_value=150, max_value=400),
    share=st.booleans(),
)
def test_multi_engine_matches_independent_serial(
    workload_key, n_queries, arrivals, share
):
    updates = list(WORKLOADS[workload_key]().updates(arrivals))
    baseline = independent_run(workload_key, updates, tuned_config())
    hosted = multi_run(workload_key, updates, n_queries, tuned_config(),
                       share)
    for query_id, deltas in hosted.items():
        assert deltas == baseline, query_id


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(["chain", "star3"]),
    shards=st.integers(min_value=2, max_value=3),
    arrivals=st.integers(min_value=200, max_value=400),
    share=st.booleans(),
)
def test_multi_engine_matches_sharded_independent(
    workload_key, shards, arrivals, share
):
    """The independent baseline run partitioned, still byte-identical."""
    session = Session.adaptive(
        WORKLOADS[workload_key],
        EngineConfig(shards=shards, parallel_backend="serial"),
    )
    run = run_sharded(
        session.experiment(arrivals, output_mode="deltas"),
        session.config.parallel(),
    )
    baseline = [exact_delta(d) for _, _, d in run.merged_deltas()]
    updates = list(WORKLOADS[workload_key]().updates(arrivals))
    # The sharded baseline runs default tunables; so must the hosted run
    # (cache choices don't change outputs, but keep the comparison flat).
    hosted = multi_run(workload_key, updates, 2, EngineConfig(), share)
    for deltas in hosted.values():
        assert deltas == baseline


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(sorted(WORKLOADS)),
    arrivals=st.integers(min_value=200, max_value=350),
    budget_bytes=st.integers(min_value=256, max_value=4096),
)
def test_global_budget_evictions_never_change_outputs(
    workload_key, arrivals, budget_bytes
):
    """A quota tight enough to evict stores still yields identity."""
    updates = list(WORKLOADS[workload_key]().updates(arrivals))
    baseline = independent_run(workload_key, updates, tuned_config())
    hosted = multi_run(
        workload_key, updates, 2, tuned_config(budget_bytes), share=True
    )
    for deltas in hosted.values():
        assert deltas == baseline


def test_sharing_engages_and_stays_byte_identical():
    """At depth where caches attach, stores are shared AND identical.

    The hypothesis properties above run short streams (profiling and
    window-sharing paths); cache selection needs ~2400 updates of
    statistics before stores attach, so this deterministic run is the
    one that proves byte-identity *while inter-query sharing is live*.
    """
    arrivals = 2_600
    updates = list(WORKLOADS["star3"]().updates(arrivals))
    baseline = independent_run("star3", updates, tuned_config())

    engine = MultiQueryEngine(share_caches=True)
    for query_id in ("q1", "q2"):
        engine.register(query_id, WORKLOADS["star3"](), tuned_config())
    hosted = engine.run(updates)
    assert engine.snapshot()["shared_stores"] >= 1, (
        "run too shallow: no inter-query store formed, the property "
        "would be vacuous"
    )
    for query_id in ("q1", "q2"):
        assert exact(hosted[query_id]) == baseline


def test_budget_evictions_at_depth_never_change_outputs():
    """A one-page global quota forces evictions once stores attach."""
    arrivals = 2_600
    updates = list(WORKLOADS["star3"]().updates(arrivals))
    baseline = independent_run("star3", updates, tuned_config())
    engine = MultiQueryEngine(
        budget_bytes=4096, share_caches=True,
        memory_check_every_updates=100,
    )
    for query_id in ("q1", "q2"):
        engine.register(query_id, WORKLOADS["star3"](), tuned_config(4096))
    hosted = engine.run(updates)
    for query_id in ("q1", "q2"):
        assert exact(hosted[query_id]) == baseline


def warmed_relations(workload, prefix):
    """Fresh relations holding exactly the windows after ``prefix``."""
    relations = {
        name: Relation(
            schema,
            (workload.indexed_attributes or {}).get(name, ()),
        )
        for name, schema in workload.graph.schemas.items()
    }
    for update in prefix:
        if update.sign is Sign.INSERT:
            relations[update.relation].insert(update.row)
        else:
            relations[update.relation].delete(update.row)
    return relations


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    workload_key=st.sampled_from(["chain", "star3"]),
    share=st.booleans(),
    boundaries=st.tuples(
        st.integers(min_value=100, max_value=250),
        st.integers(min_value=300, max_value=500),
    ),
)
def test_runtime_add_and_remove_preserve_byte_identity(
    workload_key, share, boundaries
):
    """Splice q2 in mid-stream, remove the tap-hosting q1 later.

    q1 must match an independent engine over its lifetime's prefix; q2
    must match a fresh engine bound to relations warmed by replaying the
    stream up to its registration; q2's post-removal tail must be
    unperturbed by losing the query that hosted the shared taps.
    """
    add_at, remove_at = boundaries
    arrivals = 600
    updates = list(WORKLOADS[workload_key]().updates(arrivals))
    config = tuned_config()

    engine = MultiQueryEngine(share_caches=share)
    engine.register("q1", WORKLOADS[workload_key](), config)
    q1_deltas, q2_deltas = [], []
    for i, update in enumerate(updates):
        if i == add_at:
            engine.register("q2", WORKLOADS[workload_key](), config)
        if i == remove_at:
            engine.unregister("q1")
        outputs = engine.process(update)
        q1_deltas.extend(outputs.get("q1", []))
        q2_deltas.extend(outputs.get("q2", []))

    ref_q1 = build_adaptive_engine(WORKLOADS[workload_key](), config)
    assert exact(q1_deltas) == exact(ref_q1.run(iter(updates[:remove_at])))

    ref_workload = WORKLOADS[workload_key]()
    ref_q2 = ACaching(
        ref_workload.graph,
        indexed_attributes=ref_workload.indexed_attributes,
        config=config.acaching_config(),
        relations=warmed_relations(ref_workload, updates[:add_at]),
    )
    expected_q2 = []
    for update in updates[add_at:]:
        expected_q2.extend(ref_q2.process(update))
    assert exact(q2_deltas) == exact(expected_q2)


def test_removing_the_tap_host_at_depth_leaves_survivor_identical():
    """Remove q1 (the tap-hosting creator) after shared stores attach.

    The surviving q2 keeps the store; its maintenance taps re-home; its
    delta stream must equal an engine warmed from the shared windows at
    q2's registration and never disturbed.
    """
    arrivals = 3_200
    add_at, remove_at = 200, 2_700
    updates = list(WORKLOADS["star3"]().updates(arrivals))
    config = tuned_config()

    engine = MultiQueryEngine(share_caches=True)
    engine.register("q1", WORKLOADS["star3"](), config)
    q2_deltas = []
    for i, update in enumerate(updates):
        if i == add_at:
            engine.register("q2", WORKLOADS["star3"](), config)
        if i == remove_at:
            assert engine.snapshot()["shared_stores"] >= 1, (
                "no shared store before the host left — vacuous run"
            )
            engine.unregister("q1")
        q2_deltas.extend(engine.process(update).get("q2", []))

    ref_workload = WORKLOADS["star3"]()
    ref_q2 = ACaching(
        ref_workload.graph,
        indexed_attributes=ref_workload.indexed_attributes,
        config=config.acaching_config(),
        relations=warmed_relations(ref_workload, updates[:add_at]),
    )
    expected = []
    for update in updates[add_at:]:
        expected.extend(ref_q2.process(update))
    assert exact(q2_deltas) == exact(expected)
