"""Tests for the CLI, time-based windows, and the Zipf generator."""

import pytest

from repro.cli import build_parser, main
from repro.errors import WorkloadError
from repro.streams.events import Sign
from repro.streams.generators import ZipfValues
from repro.streams.tuples import RowFactory
from repro.streams.windows import TimeWindow


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "spectrum" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "D8" in output

    def test_figure_small(self, capsys):
        assert main(["figure", "fig6", "--arrivals", "1200"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "time ratio" in output

    def test_demo(self, capsys):
        assert main(["demo", "--arrivals", "2500"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output

    def test_unknown_figure_rejected(self, capsys):
        # Validated in the handler, not argparse: one-line error, exit 1.
        assert main(["figure", "fig99"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "fig99" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTimeWindow:
    def test_expiry_by_timestamp(self):
        window = TimeWindow("R", span=10.0, rows=RowFactory())
        first = window.feed((1,), timestamp=0.0, seq_start=0)
        assert [u.sign for u in first] == [Sign.INSERT]
        second = window.feed((2,), timestamp=5.0, seq_start=1)
        assert [u.sign for u in second] == [Sign.INSERT]
        third = window.feed((3,), timestamp=11.0, seq_start=2)
        # t=0 row has aged out (11 - 10 = 1 >= 0), t=5 row has not.
        assert [u.sign for u in third] == [Sign.DELETE, Sign.INSERT]
        assert third[0].row.values == (1,)
        assert window.fill == 2

    def test_multiple_expiries_in_one_feed(self):
        window = TimeWindow("R", span=1.0)
        window.feed((1,), 0.0, 0)
        window.feed((2,), 0.5, 1)
        updates = window.feed((3,), 100.0, 2)
        assert [u.sign for u in updates] == [
            Sign.DELETE,
            Sign.DELETE,
            Sign.INSERT,
        ]

    def test_timestamps_must_not_regress(self):
        window = TimeWindow("R", span=1.0)
        window.feed((1,), 5.0, 0)
        with pytest.raises(ValueError, match="non-decreasing"):
            window.feed((2,), 4.0, 1)

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            TimeWindow("R", span=0.0)

    def test_sequence_numbers(self):
        window = TimeWindow("R", span=1.0)
        window.feed((1,), 0.0, 0)
        updates = window.feed((2,), 10.0, 7)
        assert [u.seq for u in updates] == [7, 8]


class TestZipfValues:
    def test_range_and_determinism(self):
        a = ZipfValues(domain=50, exponent=1.2, seed=5, offset=100)
        b = ZipfValues(domain=50, exponent=1.2, seed=5, offset=100)
        values = [a.next_value() for _ in range(500)]
        assert values == [b.next_value() for _ in range(500)]
        assert all(100 <= v < 150 for v in values)

    def test_skew_favors_low_ranks(self):
        generator = ZipfValues(domain=100, exponent=1.5, seed=1)
        values = [generator.next_value() for _ in range(3000)]
        head = sum(1 for v in values if v < 10)
        tail = sum(1 for v in values if v >= 90)
        assert head > 5 * max(1, tail)

    def test_higher_exponent_more_skew(self):
        mild = ZipfValues(domain=100, exponent=0.5, seed=2)
        steep = ZipfValues(domain=100, exponent=2.5, seed=2)
        mild_head = sum(
            1 for _ in range(2000) if mild.next_value() == 0
        )
        steep_head = sum(
            1 for _ in range(2000) if steep.next_value() == 0
        )
        assert steep_head > mild_head

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfValues(domain=0)
        with pytest.raises(WorkloadError):
            ZipfValues(domain=10, exponent=0.0)

    def test_zipf_keys_boost_cache_hits(self):
        """Skewed probe keys are exactly where caches shine."""
        from repro.engine.runtime import static_plan
        from repro.relations.predicates import JoinGraph
        from repro.streams.generators import StreamSpec, UniformValues
        from repro.streams.tuples import Schema
        from repro.streams.workloads import Workload

        def build(model_factory):
            graph = JoinGraph.parse(
                [
                    Schema("R", ("A",)),
                    Schema("S", ("A", "B")),
                    Schema("T", ("B",)),
                ],
                ["R.A = S.A", "S.B = T.B"],
            )
            specs = {
                "R": StreamSpec("R", ("A",), {"A": UniformValues(64, 1)}),
                "S": StreamSpec(
                    "S",
                    ("A", "B"),
                    {"A": UniformValues(64, 2), "B": UniformValues(64, 3)},
                ),
                "T": StreamSpec("T", ("B",), {"B": model_factory()}),
            }
            return Workload(
                name="zipf-test",
                graph=graph,
                specs=specs,
                windows={"R": 48, "S": 48, "T": 240},
                rates={"R": 1.0, "S": 1.0, "T": 5.0},
            )

        orders = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}

        def hit_rate(model_factory):
            workload = build(model_factory)
            plan = static_plan(
                workload, orders=orders, candidate_ids=["T:0-1p"]
            )
            plan.run(workload.updates(3000))
            return plan.ctx.metrics.hit_rate

        uniform = hit_rate(lambda: UniformValues(64, seed=9))
        zipf = hit_rate(lambda: ZipfValues(64, exponent=1.5, seed=9))
        assert zipf > uniform
