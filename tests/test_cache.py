"""Unit tests for Cache and GlobalCache semantics."""

import pytest

from repro.caching.cache import Cache
from repro.caching.global_cache import GlobalCache
from repro.caching.key import CacheKey
from repro.caching.store import DirectMappedStore
from repro.relations.predicates import JoinGraph
from repro.streams.tuples import CompositeTuple, Row, RowFactory, Schema


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


@pytest.fixture
def graph():
    return chain_graph()


@pytest.fixture
def rows():
    return RowFactory()


def make_cache(graph, buckets=64):
    key = CacheKey(graph, prefix_relations=("T",), segment_relations=("S", "R"))
    return Cache("c", "T", ("S", "R"), key, buckets=buckets)


def seg_composite(rows, a, b):
    s = rows.make((a, b))
    r = rows.make((a,))
    return CompositeTuple.of("S", s).extended("R", r)


class TestCacheProbeCreate:
    def test_miss_then_hit(self, graph, rows):
        cache = make_cache(graph)
        t_row = rows.make((7,))
        probe = CompositeTuple.of("T", t_row)
        key, values = cache.probe(probe)
        assert values is None
        composite = seg_composite(rows, a=1, b=7)
        cache.create(key, [composite])
        key2, values2 = cache.probe(probe)
        assert key2 == key
        assert values2 == [composite]
        assert cache.probes == 2 and cache.hits == 1

    def test_empty_entry_is_a_hit(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((9,)))
        key, _ = cache.probe(probe)
        cache.create(key, [])
        _, values = cache.probe(probe)
        assert values == []

    def test_observed_miss_prob(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((1,)))
        key, _ = cache.probe(probe)  # miss
        cache.create(key, [])
        cache.probe(probe)  # hit
        assert cache.observed_miss_prob == pytest.approx(0.5)
        cache.reset_counters()
        assert cache.observed_miss_prob == 1.0


class TestCacheMaintenance:
    def test_insert_into_present_key(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        cache.create(key, [])
        new_seg = seg_composite(rows, a=1, b=7)
        assert cache.maintain_insert(new_seg)
        _, values = cache.probe(probe)
        assert values == [new_seg]

    def test_insert_on_absent_key_ignored(self, graph, rows):
        cache = make_cache(graph)
        assert not cache.maintain_insert(seg_composite(rows, a=1, b=99))
        assert cache.entry_count == 0

    def test_delete_removes_exact_composite(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        a = seg_composite(rows, a=1, b=7)
        b = seg_composite(rows, a=2, b=7)
        cache.create(key, [a, b])
        cache.maintain_delete(a)
        _, values = cache.probe(probe)
        assert values == [b]

    def test_delete_is_idempotent(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        a = seg_composite(rows, a=1, b=7)
        cache.create(key, [a])
        cache.maintain_delete(a)
        cache.maintain_delete(a)  # second call is a no-op
        _, values = cache.probe(probe)
        assert values == []


class TestCacheMemoryAccounting:
    def test_bytes_track_contents(self, graph, rows):
        cache = make_cache(graph)
        assert cache.memory_bytes == 0
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        cache.create(key, [seg_composite(rows, a=1, b=7)])
        after_create = cache.memory_bytes
        assert after_create > 0
        cache.maintain_insert(seg_composite(rows, a=2, b=7))
        assert cache.memory_bytes > after_create
        cache.drop_all()
        assert cache.memory_bytes == 0
        assert cache.entry_count == 0

    def test_same_key_recreate_does_not_leak(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        cache.create(key, [seg_composite(rows, a=1, b=7)])
        size = cache.memory_bytes
        cache.create(key, [seg_composite(rows, a=1, b=7)])
        assert cache.memory_bytes == size

    def test_direct_mapped_eviction_accounted(self, graph, rows):
        cache = make_cache(graph, buckets=1)
        p1 = CompositeTuple.of("T", rows.make((1,)))
        p2 = CompositeTuple.of("T", rows.make((2,)))
        k1, _ = cache.probe(p1)
        cache.create(k1, [seg_composite(rows, a=1, b=1)])
        k2, _ = cache.probe(p2)
        cache.create(k2, [seg_composite(rows, a=1, b=2)])
        assert cache.entry_count == 1  # collision replaced
        cache.invalidate(k2)
        assert cache.memory_bytes == 0

    def test_invalidate(self, graph, rows):
        cache = make_cache(graph)
        probe = CompositeTuple.of("T", rows.make((7,)))
        key, _ = cache.probe(probe)
        cache.create(key, [seg_composite(rows, a=1, b=7)])
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        assert cache.memory_bytes == 0


class TestGlobalCache:
    def make(self, graph, rows):
        key = CacheKey(graph, prefix_relations=("R",), segment_relations=("S", "T"))
        return GlobalCache(
            "g", "R", ("S", "T"), key, anchor=("R",), buckets=64
        )

    def full_composite(self, rows, a, b):
        s = rows.make((a, b))
        t = rows.make((b,))
        r = rows.make((a,))
        return (
            CompositeTuple.of("S", s).extended("T", t).extended("R", r),
            CompositeTuple.of("S", s).extended("T", t),
        )

    def test_anchor_disjoint_from_segment(self, graph):
        key = CacheKey(graph, ("R",), ("S", "T"))
        with pytest.raises(ValueError):
            GlobalCache("g", "R", ("S", "T"), key, anchor=("S",))

    def test_segment_insert_repairs_entry(self, graph, rows):
        cache = self.make(graph, rows)
        probe = CompositeTuple.of("R", rows.make((5,)))
        key, _ = cache.probe(probe)
        cache.create(key, [])
        full, seg = self.full_composite(rows, a=5, b=2)
        assert cache.maintain_insert(full, "S")
        _, values = cache.probe(probe)
        assert values == [seg]

    def test_anchor_delete_invalidates_whole_entry(self, graph, rows):
        cache = self.make(graph, rows)
        probe = CompositeTuple.of("R", rows.make((5,)))
        key, _ = cache.probe(probe)
        full, seg = self.full_composite(rows, a=5, b=2)
        cache.create(key, [seg])
        assert cache.maintain_delete(full, "R")
        assert cache.invalidations == 1
        _, values = cache.probe(probe)
        assert values is None  # entry gone → miss

    def test_segment_delete_removes_composite_only(self, graph, rows):
        cache = self.make(graph, rows)
        probe = CompositeTuple.of("R", rows.make((5,)))
        key, _ = cache.probe(probe)
        full_a, seg_a = self.full_composite(rows, a=5, b=2)
        full_b, seg_b = self.full_composite(rows, a=5, b=3)
        cache.create(key, [seg_a, seg_b])
        cache.maintain_delete(full_a, "S")
        _, values = cache.probe(probe)
        assert values == [seg_b]

    def test_maintenance_relations(self, graph, rows):
        cache = self.make(graph, rows)
        assert set(cache.maintenance_relations) == {"S", "T", "R"}
