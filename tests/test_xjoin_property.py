"""Property: every enumerated join tree computes the same join."""

import pytest

from repro.mjoin.executor import MJoinExecutor
from repro.streams.workloads import table2_workload
from repro.xjoin.executor import XJoinExecutor
from repro.xjoin.tree import canonical, enumerate_trees


def normalized(outputs):
    return sorted(
        (
            int(o.sign),
            tuple(sorted((r, o.composite.row(r).rid) for r in o.composite)),
        )
        for o in outputs
    )


@pytest.fixture(scope="module")
def reference():
    workload = table2_workload("D5", window_base=12)
    executor = MJoinExecutor(workload.graph)
    outputs = executor.run(workload.updates(700))
    return normalized(outputs)


@pytest.fixture(scope="module")
def trees():
    workload = table2_workload("D5", window_base=12)
    return enumerate_trees(workload.graph)


def test_enumeration_is_complete(trees):
    assert len(trees) == 15  # all unordered shapes over 4 star leaves


@pytest.mark.parametrize("index", range(15))
def test_every_tree_matches_the_mjoin(index, trees, reference):
    tree = trees[index]
    workload = table2_workload("D5", window_base=12)
    executor = XJoinExecutor(workload.graph, tree)
    outputs = executor.run(workload.updates(700))
    assert normalized(outputs) == reference, f"tree {canonical(tree)} diverged"


def test_memory_differs_across_shapes(trees):
    """Bushy vs deep trees materialize different subresults."""
    footprints = set()
    for tree in trees[:6]:
        workload = table2_workload("D5", window_base=12)
        executor = XJoinExecutor(workload.graph, tree)
        executor.run(workload.updates(700))
        footprints.add(executor.peak_memory_bytes)
    assert len(footprints) > 1
