"""End-to-end observability tests: engine runs with tracing enabled.

Covers the PR's acceptance criteria: a traced adaptive run logs
re-optimization decisions whose recorded benefit/cost estimates are
exactly reproducible from the recorded profiler statistics, series
points expose per-window hit rate and decision events, and the CLI's
``trace`` / ``--obs-jsonl`` paths work.
"""

import json

import pytest

from repro import cli, obs
from repro.bench.harness import decision_markers
from repro.core import cost_model
from repro.core.acaching import ACaching, ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.engine.runtime import run_with_series
from repro.obs.decisions import ATTACH
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def adaptive_engine():
    """A small adaptive setup known to converge on the T:0-1p cache."""
    workload = three_way_chain(
        t_multiplicity=5.0, window_r=32, window_s=32
    )
    config = ACachingConfig(
        profiler=ProfilerConfig(
            window=4, profile_probability=0.1, bloom_window_tuples=24
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1200, profiling_phase_updates=200
        ),
        ordering=OrderingConfig(interval_updates=10**9),
    )
    engine = ACaching(workload.graph, orders=CHAIN_ORDERS, config=config)
    return workload, engine


class TestTracedAdaptiveRun:
    @pytest.fixture(scope="class")
    def traced_run(self):
        with obs.session() as active:
            workload, engine = adaptive_engine()
            engine.run(workload.updates(6000))
        return active, engine

    def test_engine_adopts_the_session(self, traced_run):
        active, engine = traced_run
        assert engine.ctx.obs is active

    def test_decisions_logged_during_reoptimization(self, traced_run):
        active, engine = traced_run
        assert engine.ctx.metrics.reoptimizations >= 1
        attaches = [
            r for r in active.decisions.entries() if r.action == ATTACH
        ]
        assert attaches
        assert any(r.candidate_id == "T:0-1p" for r in attaches)
        for record in attaches:
            assert record.reopt_seq >= 1
            assert record.reason

    def test_recorded_estimates_match_cost_model(self, traced_run):
        """Acceptance criterion: re-running the cost model on a decision's
        recorded statistics reproduces its benefit/cost exactly."""
        active, engine = traced_run
        cm = engine.ctx.cost_model
        checked = 0
        for record in active.decisions.entries():
            stats = record.statistics()
            if stats is None or record.benefit is None:
                continue
            assert cost_model.benefit(stats, cm) == pytest.approx(
                record.benefit
            )
            assert cost_model.cost(stats, cm) == pytest.approx(record.cost)
            checked += 1
        assert checked >= 1

    def test_trace_has_adaptivity_events(self, traced_run):
        active, engine = traced_run
        kinds = set(active.tracer.kinds())
        assert {"update_processed", "profile_sample", "reoptimize"} <= kinds
        assert "cache_attach" in kinds
        applied = [
            e for e in active.tracer.events("reoptimize")
            if e.data.get("applied")
        ]
        assert applied
        assert all(e.t_us > 0 for e in active.tracer.events())

    def test_registry_collected_detail_metrics(self, traced_run):
        active, engine = traced_run
        names = {h.name for h in active.registry.histograms()}
        assert "repro_pipeline_update_us" in names
        assert "repro_operator_us" in names
        assert active.registry.value(
            "repro_cache_hit_total", {"cache": "T:0-1p"}
        ) > 0

    def test_metrics_facade_publishes_into_registry(self, traced_run):
        active, engine = traced_run
        engine.ctx.metrics.publish(active.registry)
        assert active.registry.value("repro_updates_processed_total") == (
            engine.ctx.metrics.updates_processed
        )


class TestZeroVirtualOverhead:
    def test_tracing_does_not_move_virtual_time(self):
        """Observability never charges the virtual clock, so a traced run
        reports bit-identical virtual-time throughput to an untraced one
        (the Figure 6 '<2% regression' criterion holds with margin)."""
        workload, engine = adaptive_engine()
        engine.run(workload.updates(4000))
        baseline = engine.ctx.metrics.throughput(
            engine.ctx.clock.now_seconds
        )
        with obs.session():
            workload, traced = adaptive_engine()
            traced.run(workload.updates(4000))
        observed = traced.ctx.metrics.throughput(
            traced.ctx.clock.now_seconds
        )
        assert observed == baseline


class TestSeriesPoints:
    def test_series_carries_hit_rate_and_decisions(self):
        workload, engine = adaptive_engine()
        series = run_with_series(
            engine, workload.updates(6000), sample_every_updates=500,
            used_caches=engine.used_caches,
        )
        assert series
        # Once the profitable cache is wired, windows see real hit rates.
        assert any(p.hit_rate > 0 for p in series)
        assert all(0.0 <= p.hit_rate <= 1.0 for p in series)
        flat = [d for p in series for d in p.decisions]
        assert any(
            d.action == ATTACH and d.candidate_id == "T:0-1p" for d in flat
        )
        # Decisions land in the window whose sampling interval saw them.
        markers = decision_markers(series)
        assert any(
            m["label"] == "cache T:0-1p added" for m in markers
        )

    def test_disabled_obs_still_yields_decisions(self):
        # The decision log is always on — no session required.
        workload, engine = adaptive_engine()
        assert engine.ctx.obs.enabled is False
        series = run_with_series(
            engine, workload.updates(6000), sample_every_updates=500
        )
        flat = [d for p in series for d in p.decisions]
        assert any(d.action == ATTACH for d in flat)


class TestCli:
    def test_trace_fig6_smoke(self, capsys, tmp_path):
        jsonl = tmp_path / "fig6.jsonl"
        prom = tmp_path / "fig6.prom"
        exit_code = cli.main([
            "trace", "fig6", "--arrivals", "2000",
            "--jsonl", str(jsonl), "--prometheus", str(prom),
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "trace summary:" in out
        assert "update_processed" in out
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records
        assert all("kind" in r and "t_us" in r for r in records)
        assert "repro_" in prom.read_text()

    def test_figure_obs_jsonl_records_reoptimize_decisions(
        self, capsys, tmp_path
    ):
        """Acceptance criterion: a traced fig12 run's JSONL holds at least
        one re-optimization decision whose benefit/cost match the cost
        model run on the profiler statistics it recorded."""
        path = tmp_path / "fig12.jsonl"
        exit_code = cli.main([
            "figure", "fig12", "--arrivals", "12000",
            "--obs-jsonl", str(path),
        ])
        assert exit_code == 0
        assert "wrote JSONL trace" in capsys.readouterr().out
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        decisions = [r for r in records if r["kind"] == "decision"]
        reopt_decisions = [
            d for d in decisions
            if d["reopt_seq"] >= 1 and d["segment_d"]
        ]
        assert reopt_decisions
        from repro.engine.clock import CostModel
        default_cm = CostModel()
        for record in reopt_decisions:
            stats = cost_model.CacheStatistics(
                segment_d=tuple(record["segment_d"]),
                segment_c=tuple(record["segment_c"]),
                d_out=record["d_out"],
                miss_prob=record["miss_prob"],
                maintenance_rate=record["maintenance_rate"],
                key_width=record["key_width"],
                anchor_size=record["anchor_size"],
            )
            assert cost_model.benefit(stats, default_cm) == pytest.approx(
                record["benefit"]
            )
            assert cost_model.cost(stats, default_cm) == pytest.approx(
                record["cost"]
            )
        assert any(r["kind"] == "reoptimize" for r in records)

    def test_trace_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["trace", "nope"])
