"""Tests for the Profiler's online estimation (Appendix A)."""

import pytest

from repro.caching.cache import Cache
from repro.caching.key import CacheKey
from repro.core.candidates import enumerate_candidates
from repro.core.profiler import PipelineProfile, Profiler, ProfilerConfig
from repro.mjoin.executor import MJoinExecutor
from repro.operators.pipeline import ProfileSample
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def make_executor():
    workload = three_way_chain(t_multiplicity=3.0, window_r=32, window_s=32)
    executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
    return workload, executor


class TestPipelineProfile:
    def test_d_and_c_estimates(self):
        profile = PipelineProfile("T", slots=2, window=4)
        # rate: one arrival every 100µs → 10_000 updates/sec.
        for i in range(8):
            profile.record_arrival(i * 100.0)
        for _ in range(4):
            profile.record_sample(
                ProfileSample(deltas=[1, 2, 6], taus=[10.0, 30.0])
            )
        assert profile.ready()
        assert profile.rate() == pytest.approx(10_000.0)
        assert profile.d(0) == pytest.approx(10_000.0)       # 1 per update
        assert profile.d(1) == pytest.approx(20_000.0)       # 2 per update
        assert profile.d(2) == pytest.approx(60_000.0)       # outputs
        assert profile.c(0) == pytest.approx(10.0)           # µs per tuple
        assert profile.c(1) == pytest.approx(15.0)           # 30µs over 2

    def test_not_ready_without_enough_samples(self):
        profile = PipelineProfile("T", slots=1, window=5)
        profile.record_sample(ProfileSample(deltas=[1, 1], taus=[1.0]))
        assert not profile.ready()

    def test_zero_rate_without_arrivals(self):
        profile = PipelineProfile("T", slots=1, window=2)
        assert profile.rate() == 0.0
        assert profile.d(0) == 0.0

    def test_c_with_no_tuples(self):
        profile = PipelineProfile("T", slots=1, window=1)
        profile.record_sample(ProfileSample(deltas=[0, 0], taus=[0.0]))
        assert profile.c(0) == 0.0


class TestProfilerIntegration:
    def test_gate_and_sink_fill_profiles(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor,
            ProfilerConfig(window=4, profile_probability=1.0),
        )
        executor.run(workload.updates(300))
        for profile in profiler.profiles.values():
            assert profile.ready()
            assert profile.rate() > 0

    def test_bloom_lifecycle_and_miss_estimates(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor,
            ProfilerConfig(
                window=3, profile_probability=0.2, bloom_window_tuples=16
            ),
        )
        candidates = enumerate_candidates(
            workload.graph, executor.orders(), global_quota=4
        )
        for candidate in candidates:
            profiler.install_bloom(candidate)
        executor.run(workload.updates(1500))
        target = candidates[0].candidate_id
        assert profiler.miss_prob(target) is not None
        assert 0.0 <= profiler.miss_prob(target) <= 1.0
        profiler.remove_bloom(target)
        assert target not in profiler._installed_blooms

    def test_duty_cycle_pauses_after_window(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor,
            ProfilerConfig(window=2, bloom_window_tuples=8),
        )
        candidates = enumerate_candidates(
            workload.graph, executor.orders(), global_quota=0
        )
        profiler.install_bloom(candidates[0])
        executor.run(workload.updates(600))
        _owner, estimator = profiler._installed_blooms[
            candidates[0].candidate_id
        ]
        assert estimator.paused
        profiler.reactivate_blooms()
        assert not estimator.paused

    def test_statistics_for_full_candidate(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor,
            ProfilerConfig(
                window=3, profile_probability=0.5, bloom_window_tuples=16
            ),
        )
        candidates = enumerate_candidates(
            workload.graph, executor.orders(), global_quota=0
        )
        for candidate in candidates:
            profiler.install_bloom(candidate)
        executor.run(workload.updates(1200))
        stats = profiler.statistics_for(candidates[0])
        assert stats is not None
        assert stats.d_probe > 0
        assert stats.maintenance_rate >= 0
        assert 0 <= stats.miss_prob <= 1

    def test_statistics_none_before_ready(self):
        workload, executor = make_executor()
        profiler = Profiler(executor, ProfilerConfig(window=10))
        candidates = enumerate_candidates(
            workload.graph, executor.orders(), global_quota=0
        )
        assert profiler.statistics_for(candidates[0]) is None

    def test_harvest_respects_maturity(self):
        workload, executor = make_executor()
        profiler = Profiler(executor, ProfilerConfig(window=4))
        key = CacheKey(workload.graph, ("T",), ("S", "R"))
        cache = Cache("c", "T", ("S", "R"), key)
        cache.probes, cache.hits = 100, 50  # immature: entry_count 0 but <300
        profiler.harvest_used_cache("c", cache)
        assert profiler.miss_prob("c") is None
        cache.probes, cache.hits = 500, 400
        profiler.harvest_used_cache("c", cache)
        assert profiler.miss_prob("c") == pytest.approx(0.2)
        assert cache.probes == 0  # counters reset after harvest

    def test_expected_entries_scales_with_miss(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor, ProfilerConfig(window=2, bloom_window_tuples=100)
        )
        candidates = enumerate_candidates(
            workload.graph, executor.orders(), global_quota=0
        )
        cid = candidates[0].candidate_id
        profiler._observe_miss(cid, 0.5)
        profiler._observe_miss(cid, 0.5)
        assert profiler.expected_entries(candidates[0]) == pytest.approx(
            2 * 0.5 * 100
        )

    def test_rebuild_profiles_on_reorder(self):
        workload, executor = make_executor()
        profiler = Profiler(
            executor, ProfilerConfig(window=2, profile_probability=1.0)
        )
        executor.run(workload.updates(200))
        assert profiler.profiles["T"].ready()
        executor.reorder_pipeline("T", ("R", "S"))
        profiler.rebuild_profiles("T")
        assert not profiler.profiles["T"].ready()
        # Other pipelines keep their history.
        assert profiler.profiles["R"].ready()

    def test_rebuild_profiles_preserves_arrival_rate_history(self):
        # Reordering a pipeline invalidates its δ/τ evidence (they
        # describe the old plan) but not its arrival history: rate(Ri)
        # is a property of the stream, not the plan. Losing it would
        # zero the rate — and with it every d-term — until the window
        # refills, starving selection after each reorder.
        workload, executor = make_executor()
        profiler = Profiler(
            executor, ProfilerConfig(window=2, profile_probability=1.0)
        )
        executor.run(workload.updates(200))
        rate_before = profiler.profiles["T"].rate()
        assert rate_before > 0.0
        executor.reorder_pipeline("T", ("R", "S"))
        profiler.rebuild_profiles("T")
        assert profiler.profiles["T"].rate() == pytest.approx(rate_before)
