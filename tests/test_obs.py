"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro import obs
from repro.engine.metrics import Metrics
from repro.obs.decisions import ATTACH, DETACH, DecisionLog, MEMORY_EVICT
from repro.obs.export import (
    decisions_to_jsonl,
    events_to_jsonl,
    observability_to_jsonl,
    registry_to_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    METRICS_FACADE_NAMES,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.core.cost_model import CacheStatistics


class TestTracer:
    def test_emit_and_read_back(self):
        tracer = Tracer()
        event = tracer.emit("reoptimize", 42.0, applied=True)
        assert event.kind == "reoptimize"
        assert event.t_us == 42.0
        assert event.data["applied"] is True
        assert tracer.events("reoptimize") == [event]

    def test_seq_is_total_order_across_kinds(self):
        tracer = Tracer()
        tracer.emit("cache_probe", 1.0)
        tracer.emit("reoptimize", 2.0)
        tracer.emit("cache_probe", 3.0)
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs) == [1, 2, 3]

    def test_ring_bounded_per_kind(self):
        tracer = Tracer(capacity_per_kind=8)
        for i in range(100):
            tracer.emit("update_processed", float(i))
        tracer.emit("reoptimize", 999.0)
        # The flood of hot events wrapped its own ring only...
        assert len(tracer.events("update_processed")) == 8
        assert tracer.dropped["update_processed"] == 92
        # ...and could not evict the rare kind.
        assert len(tracer.events("reoptimize")) == 1
        assert tracer.dropped_total() == 92

    def test_retains_newest_events_on_wrap(self):
        tracer = Tracer(capacity_per_kind=4)
        for i in range(10):
            tracer.emit("cache_probe", float(i))
        kept = [e.t_us for e in tracer.events("cache_probe")]
        assert kept == [6.0, 7.0, 8.0, 9.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity_per_kind=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("cache_probe", 1.0)
        tracer.clear()
        assert len(tracer) == 0
        # Sequence numbers keep increasing across a clear.
        assert tracer.emit("cache_probe", 2.0).seq == 2

    def test_null_tracer_is_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("anything", 1.0, x=1) is None
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0

    def test_null_tracer_has_no_instance_dict(self):
        # The no-op guard is one attribute check; the slotted singleton
        # guarantees no per-event allocation can sneak in.
        assert not hasattr(NullTracer(), "__dict__")


class TestRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", {"cache": "c1"})
        counter.inc()
        counter.inc(2.0)
        assert registry.counter("repro_x_total", {"cache": "c1"}) is counter
        assert registry.value("repro_x_total", {"cache": "c1"}) == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x", ()).inc(-1.0)

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        a = registry.counter("x", {"a": "1", "b": "2"})
        b = registry.counter("x", {"b": "2", "a": "1"})
        assert a is b

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("x", ())
        gauge.set(10.0)
        gauge.inc(-4.0)
        assert gauge.value == 6.0

    def test_histogram_buckets_and_mean(self):
        histogram = Histogram("x", (), buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.inf_count == 1
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(138.875)
        cumulative = histogram.cumulative_counts()
        assert cumulative[-1] == (float("inf"), 4)
        assert [c for _, c in cumulative] == [1, 2, 3, 4]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", (), buckets=(10.0, 1.0))

    def test_ingest_metrics_subsumes_facade(self):
        registry = MetricsRegistry()
        metrics = Metrics(updates_processed=7, cache_probes=4, cache_hits=2)
        metrics.per_cache_hits["T:0-1p"] = 2
        metrics.publish(registry)
        assert registry.value("repro_updates_processed_total") == 7
        assert registry.value("repro_cache_hit_rate") == 0.5
        assert registry.value("repro_cache_hits", {"cache": "T:0-1p"}) == 2
        # Every legacy counter has a canonical registry name.
        for metric_name in METRICS_FACADE_NAMES.values():
            assert registry.value(metric_name) is not None


STATS = CacheStatistics(
    segment_d=(100.0, 200.0),
    segment_c=(2.0, 3.0),
    d_out=50.0,
    miss_prob=0.25,
    maintenance_rate=40.0,
    key_width=1,
    anchor_size=0,
)


class TestDecisionLog:
    def test_record_and_read_back(self):
        log = DecisionLog()
        record = log.record(
            10.0, ATTACH, "T:0-1p", reason="test", reopt_seq=1,
            stats=STATS, benefit=123.0, cost=45.0,
        )
        assert record.net == pytest.approx(78.0)
        assert log.entries() == [record]
        assert log.last_seq == 1

    def test_statistics_roundtrip(self):
        log = DecisionLog()
        record = log.record(10.0, ATTACH, "c", reason="r", stats=STATS)
        assert record.statistics() == STATS

    def test_statistics_none_without_stats(self):
        log = DecisionLog()
        record = log.record(10.0, MEMORY_EVICT, "c", reason="r")
        assert record.statistics() is None
        assert record.net is None

    def test_since_filters_by_seq(self):
        log = DecisionLog()
        log.record(1.0, ATTACH, "a", reason="r")
        mark = log.last_seq
        second = log.record(2.0, DETACH, "b", reason="r")
        assert log.since(mark) == [second]
        assert log.since(log.last_seq) == []

    def test_bounded_capacity(self):
        log = DecisionLog(capacity=4)
        for i in range(10):
            log.record(float(i), ATTACH, f"c{i}", reason="r")
        assert len(log) == 4
        assert log.dropped == 6
        assert [r.candidate_id for r in log.entries()] == [
            "c6", "c7", "c8", "c9"
        ]


class TestSession:
    def test_default_is_disabled(self):
        bundle = obs.default_observability()
        assert bundle.enabled is False
        assert bundle.tracer is NULL_TRACER

    def test_session_scopes_the_active_bundle(self):
        assert obs.current() is None
        with obs.session() as active:
            assert obs.current() is active
            assert active.enabled is True
            assert obs.default_observability() is active
        assert obs.current() is None

    def test_nested_sessions_restore_outer(self):
        with obs.session() as outer:
            with obs.session() as inner:
                assert obs.current() is inner
            assert obs.current() is outer


class TestExport:
    def test_events_to_jsonl(self):
        tracer = Tracer()
        tracer.emit("reoptimize", 5.0, applied=False)
        lines = events_to_jsonl(tracer.events()).splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "reoptimize"
        assert record["applied"] is False

    def test_decisions_to_jsonl(self):
        log = DecisionLog()
        log.record(1.0, ATTACH, "c", reason="r", stats=STATS)
        record = json.loads(decisions_to_jsonl(log))
        assert record["kind"] == "decision"
        assert record["segment_d"] == [100.0, 200.0]

    def test_merged_chronology_sorted_by_time(self):
        active = obs.Observability.tracing()
        active.tracer.emit("cache_probe", 30.0)
        active.decisions.record(10.0, ATTACH, "c", reason="r")
        active.tracer.emit("update_processed", 20.0)
        kinds = [
            json.loads(line)["kind"]
            for line in observability_to_jsonl(active).splitlines()
        ]
        assert kinds == ["decision", "update_processed", "cache_probe"]

    def test_run_summary_line(self):
        active = obs.Observability.tracing()
        metrics = Metrics(updates_processed=3)
        last = observability_to_jsonl(active, metrics).splitlines()[-1]
        summary = json.loads(last)
        assert summary["kind"] == "run_summary"
        assert summary["updates_processed"] == 3

    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"cache": "c"}).inc(2)
        registry.gauge("repro_mem_bytes").set(4096)
        registry.histogram(
            "repro_op_us", {"pipeline": "T"}, buckets=(1.0, 10.0)
        ).observe(5.0)
        text = registry_to_prometheus(registry)
        assert 'repro_x_total{cache="c"} 2' in text
        assert "repro_mem_bytes 4096" in text
        # Canonical family label order: sorted labels, ``le`` last.
        assert 'repro_op_us_bucket{pipeline="T",le="10"} 1' in text
        assert 'repro_op_us_bucket{pipeline="T",le="+Inf"} 1' in text
        assert 'repro_op_us_count{pipeline="T"} 1' in text
        assert "# TYPE repro_x_total counter" in text
        assert "# HELP repro_x_total" in text
        assert "# TYPE repro_mem_bytes gauge" in text
        assert "# TYPE repro_op_us histogram" in text

    def test_prometheus_ingests_metrics(self):
        registry = MetricsRegistry()
        text = registry_to_prometheus(registry, Metrics(updates_processed=9))
        assert "repro_updates_processed_total 9" in text
