"""Tests for the A-Greedy adaptive join ordering adaptation."""

import pytest

from repro.mjoin.executor import MJoinExecutor
from repro.ordering.agreedy import (
    AGreedyOrderer,
    MatchRateEstimator,
    OrderingConfig,
    greedy_order,
    order_cost,
)
from repro.relations.predicates import JoinGraph
from repro.streams.tuples import RowFactory, Schema
from repro.streams.workloads import three_way_chain


def loaded_executor(r_rows=4, s_rows=4, t_rows=20):
    """Executor with hand-loaded relations: T is the 'fat' relation."""
    workload = three_way_chain()
    executor = MJoinExecutor(workload.graph)
    rows = RowFactory()
    for i in range(r_rows):
        executor.relations["R"].insert(rows.make((i,)))
    for i in range(s_rows):
        executor.relations["S"].insert(rows.make((i, i)))
    for i in range(t_rows):
        executor.relations["T"].insert(rows.make((i % s_rows,)))
    return workload, executor


class TestMatchRateEstimator:
    def test_high_multiplicity_detected(self):
        workload, executor = loaded_executor()
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        # Each S.B value appears t_rows/s_rows = 5 times in T.
        rate_t = estimator.match_rate(["S"], "T")
        rate_r = estimator.match_rate(["S"], "R")
        assert rate_t > rate_r

    def test_disjoint_domains_measured_as_zero(self):
        workload, executor = loaded_executor()
        rows = RowFactory(start=10_000)
        # Replace T with values outside S's domain.
        for row in list(executor.relations["T"].rows()):
            executor.relations["T"].delete(row)
        for i in range(10):
            executor.relations["T"].insert(rows.make((999_999,)))
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        assert estimator.match_rate(["S"], "T") == 0.0

    def test_batch_memoization(self):
        workload, executor = loaded_executor()
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        estimator.begin_batch()
        first = estimator.match_rate(["S"], "T")
        # Mutate the relation; the memoized value must stick in-batch.
        rows = RowFactory(start=20_000)
        for i in range(50):
            executor.relations["T"].insert(rows.make((0,)))
        assert estimator.match_rate(["S"], "T") == first
        estimator.begin_batch()
        assert estimator.match_rate(["S"], "T") != first


class TestGreedyOrder:
    def test_selective_relation_first(self):
        workload, executor = loaded_executor()
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        order = greedy_order("S", workload.graph, estimator)
        # From S, joining R (rate ~1) before T (rate ~5) is greedy.
        assert order == ("R", "T")

    def test_connectivity_respected(self):
        workload, executor = loaded_executor()
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        order = greedy_order("R", workload.graph, estimator)
        assert order[0] == "S"  # T is not connected to R directly

    def test_order_cost_prefers_cheap_plans(self):
        workload, executor = loaded_executor()
        estimator = MatchRateEstimator(
            workload.graph, executor.relations, OrderingConfig()
        )
        estimator.begin_batch()
        cheap = order_cost("S", ("R", "T"), workload.graph, estimator)
        costly = order_cost("S", ("T", "R"), workload.graph, estimator)
        assert cheap < costly


class TestAGreedyOrderer:
    def test_no_reorder_before_interval(self):
        workload, executor = loaded_executor()
        orderer = AGreedyOrderer(
            executor, OrderingConfig(interval_updates=10**9)
        )
        assert orderer.maybe_reorder() == []

    def test_reorder_requires_confirmation(self):
        workload = three_way_chain(t_multiplicity=5.0, window_r=24, window_s=24)
        executor = MJoinExecutor(
            workload.graph,
            orders={"S": ("T", "R"), "R": ("S", "T"), "T": ("S", "R")},
        )
        orderer = AGreedyOrderer(
            executor,
            OrderingConfig(
                interval_updates=200, hysteresis=0.05, cooldown_intervals=0
            ),
        )
        changed_total = []
        for update in workload.updates(2000):
            executor.process(update)
            changed_total.extend(orderer.maybe_reorder())
        # ∆S's (T, R) order is clearly bad (T has 5× multiplicity); the
        # orderer should fix it — but only after a confirming second check.
        assert "S" in changed_total
        assert executor.order_of("S") == ("R", "T")
        assert orderer.reorders >= 1

    def test_cooldown_limits_thrash(self):
        workload = three_way_chain(t_multiplicity=5.0, window_r=24, window_s=24)
        executor = MJoinExecutor(workload.graph, orders=None)
        orderer = AGreedyOrderer(
            executor,
            OrderingConfig(interval_updates=100, cooldown_intervals=1000),
        )
        for update in workload.updates(3000):
            executor.process(update)
            orderer.maybe_reorder()
        assert orderer.reorders <= len(workload.graph.relations)
