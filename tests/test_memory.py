"""Tests for the Section 5 memory allocator."""

import math

from repro.core.candidates import CandidateCache
from repro.core.memory import (
    AllocationResult,
    CacheDemand,
    MemoryAllocator,
    PAGE_BYTES,
)


def candidate(cid, owner="R1", start=0, end=1):
    return CandidateCache(
        candidate_id=cid,
        owner=owner,
        start=start,
        end=end,
        segment=("R2", "R3"),
        prefix=(owner,),
    )


class TestCacheDemand:
    def test_priority_is_net_per_byte(self):
        demand = CacheDemand(candidate("a"), net_benefit=100.0, expected_bytes=50.0)
        assert demand.priority == 2.0

    def test_zero_bytes_priority(self):
        assert CacheDemand(candidate("a"), 10.0, 0.0).priority == math.inf
        assert CacheDemand(candidate("a"), 0.0, 0.0).priority == 0.0

    def test_pages_round_up(self):
        assert CacheDemand(candidate("a"), 1.0, 1.0).expected_pages == 1
        assert (
            CacheDemand(candidate("a"), 1.0, PAGE_BYTES + 1).expected_pages
            == 2
        )


class TestAdmission:
    def test_unbounded_admits_everything(self):
        allocator = MemoryAllocator(budget_bytes=None)
        demands = [
            CacheDemand(candidate(f"c{i}"), 10.0, 10_000.0) for i in range(5)
        ]
        result = allocator.admit(demands)
        assert len(result.admitted) == 5
        assert result.rejected == []

    def test_priority_order_wins(self):
        allocator = MemoryAllocator(budget_bytes=PAGE_BYTES)  # one page
        low = CacheDemand(candidate("low"), 1.0, 100.0)
        high = CacheDemand(candidate("high"), 100.0, 100.0)
        result = allocator.admit([low, high])
        assert [c.candidate_id for c in result.admitted] == ["high"]
        assert [c.candidate_id for c in result.rejected] == ["low"]

    def test_budget_exhaustion(self):
        allocator = MemoryAllocator(budget_bytes=2 * PAGE_BYTES)
        demands = [
            CacheDemand(candidate(f"c{i}"), 10.0 - i, PAGE_BYTES)
            for i in range(3)
        ]
        result = allocator.admit(demands)
        assert len(result.admitted) == 2
        assert result.pages_used == 2

    def test_skips_large_but_can_take_smaller(self):
        allocator = MemoryAllocator(budget_bytes=PAGE_BYTES)
        huge = CacheDemand(candidate("huge"), 1000.0, 10 * PAGE_BYTES)
        small = CacheDemand(candidate("small"), 1.0, 100.0)
        result = allocator.admit([huge, small])
        assert [c.candidate_id for c in result.admitted] == ["small"]


class TestRuntimeEnforcement:
    def test_over_budget(self):
        allocator = MemoryAllocator(budget_bytes=1000)
        assert allocator.over_budget(1001)
        assert not allocator.over_budget(1000)
        assert not MemoryAllocator(None).over_budget(10**9)

    def test_victims_lowest_priority_first(self):
        allocator = MemoryAllocator(budget_bytes=1000)
        priorities = {"a": 5.0, "b": 1.0, "c": 3.0}
        usage = {"a": 400, "b": 400, "c": 400}
        victims = allocator.victims(priorities, usage, used_bytes=1200)
        assert victims == ["b"]

    def test_victims_until_fit(self):
        allocator = MemoryAllocator(budget_bytes=100)
        priorities = {"a": 2.0, "b": 1.0}
        usage = {"a": 300, "b": 300}
        victims = allocator.victims(priorities, usage, used_bytes=600)
        assert victims == ["b", "a"]

    def test_no_victims_within_budget(self):
        allocator = MemoryAllocator(budget_bytes=1000)
        assert allocator.victims({"a": 1.0}, {"a": 10}, 500) == []
