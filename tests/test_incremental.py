"""Tests for the Section 8 incremental re-optimizer extension."""

import pytest

from repro.core.acaching import ACaching, ACachingConfig
from repro.core.incremental import ImportanceTracker, IncrementalReoptimizer
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import three_way_chain

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


class TestImportanceTracker:
    def test_threshold_widens_with_ineffective_changes(self):
        tracker = ImportanceTracker(base_threshold=0.2, widen_factor=2.0)
        assert tracker.threshold_for("c") == pytest.approx(0.2)
        tracker.record({"c"}, selection_changed=False)
        assert tracker.threshold_for("c") == pytest.approx(0.4)
        tracker.record({"c"}, selection_changed=False)
        assert tracker.threshold_for("c") == pytest.approx(0.8)

    def test_effective_change_resets(self):
        tracker = ImportanceTracker(base_threshold=0.2)
        tracker.record({"c"}, selection_changed=False)
        tracker.record({"c"}, selection_changed=True)
        assert tracker.threshold_for("c") == pytest.approx(0.2)
        assert tracker.widenings("c") == 0

    def test_widening_is_capped(self):
        tracker = ImportanceTracker(
            base_threshold=0.1, widen_factor=2.0, max_widenings=2
        )
        for _ in range(10):
            tracker.record({"c"}, selection_changed=False)
        assert tracker.threshold_for("c") == pytest.approx(0.4)

    def test_only_triggering_candidates_updated(self):
        tracker = ImportanceTracker(base_threshold=0.2)
        tracker.record({"a"}, selection_changed=False)
        assert tracker.widenings("a") == 1
        assert tracker.widenings("b") == 0


class TestIncrementalEngine:
    def engine(self, **reopt_kwargs):
        workload = three_way_chain(
            t_multiplicity=5.0, window_r=32, window_s=32
        )
        config = ACachingConfig(
            profiler=ProfilerConfig(
                window=4, profile_probability=0.1, bloom_window_tuples=24
            ),
            reoptimizer=ReoptimizerConfig(
                reopt_interval_updates=1000,
                profiling_phase_updates=200,
                **reopt_kwargs,
            ),
            ordering=OrderingConfig(interval_updates=10**9),
            incremental_reoptimizer=True,
        )
        return workload, ACaching(
            workload.graph, orders=CHAIN_ORDERS, config=config
        )

    def test_engine_uses_incremental_reoptimizer(self):
        workload, engine = self.engine()
        assert isinstance(engine.reoptimizer, IncrementalReoptimizer)

    def test_converges_like_the_baseline(self):
        workload, engine = self.engine()
        outputs = engine.run(workload.updates(8000))
        assert "T:0-1p" in engine.used_caches()
        # Exactness is non-negotiable.
        live = sum(int(o.sign) for o in outputs)
        executor = engine.executor
        expected = sum(
            executor.relations["R"].match_count("A", s.values[0])
            * executor.relations["T"].match_count("B", s.values[1])
            for s in executor.relations["S"].rows()
        )
        assert live == expected

    def test_runs_both_incremental_and_full_rounds(self):
        workload, engine = self.engine()
        engine.run(workload.updates(12_000))
        reopt = engine.reoptimizer
        assert reopt.full_rounds >= 1
        assert reopt.incremental_rounds + reopt.full_rounds >= 2

    def test_local_moves_drop_negative_and_add_positive(self):
        workload, engine = self.engine()
        reopt = engine.reoptimizer
        # Synthesize a local-move decision directly.
        cids = list(reopt.candidates)
        prefix = [c for c in cids if c.endswith("p")]
        assert prefix
        target = reopt._local_moves(
            current=set(),
            triggering={prefix[0]},
            nets={prefix[0]: 10.0},
        )
        assert prefix[0] in target
        target = reopt._local_moves(
            current={prefix[0]},
            triggering={prefix[0]},
            nets={prefix[0]: -5.0},
        )
        assert prefix[0] not in target

    def test_swap_prefers_higher_net(self):
        workload, engine = self.engine()
        reopt = engine.reoptimizer
        cids = list(reopt.candidates)
        conflicting = [
            (a, b)
            for a in cids
            for b in cids
            if a < b
            and reopt.candidates[a].conflicts_with(reopt.candidates[b])
        ]
        if not conflicting:
            pytest.skip("no conflicting candidate pair under these orders")
        a, b = conflicting[0]
        target = reopt._local_moves(
            current={a}, triggering={b}, nets={a: 5.0, b: 50.0}
        )
        assert b in target and a not in target
        target = reopt._local_moves(
            current={a}, triggering={b}, nets={a: 50.0, b: 5.0}
        )
        assert a in target and b not in target
