"""EngineConfig's nested sub-config groups and the run()/execute() API.

The flat sharding/durability/tenancy knobs moved into frozen sub-configs
(``ShardingConfig``, ``DurabilityConfig``, ``TenancyConfig``). Flat
keywords stay accepted for back-compat and are reconciled into the
nested form; conflicts must fail loudly naming the new path. Alongside:
``Session.run`` dispatches on the config's sharding, and
``Session.run_sharded`` is a deprecation shim over ``execute``.
"""

import warnings
from dataclasses import replace
from functools import partial

import pytest

from repro.api import (
    DurabilityConfig,
    EngineConfig,
    Session,
    ShardingConfig,
    TenancyConfig,
)
from repro.errors import ConfigError, PlanError
from repro.streams.workloads import fig9_workload

FACTORY = partial(fig9_workload, 3, window=24)


class TestReconciliation:
    def test_flat_keywords_synthesize_the_nested_groups(self):
        config = EngineConfig(
            shards=2,
            parallel_backend="process",
            checkpoint_interval=500,
            tenant_min_bytes=1024,
        )
        assert config.sharding == ShardingConfig(
            shards=2, backend="process"
        )
        assert config.durability.checkpoint_interval == 500
        assert config.tenancy.min_bytes == 1024

    def test_nested_groups_mirror_back_to_the_flat_attrs(self):
        config = EngineConfig(
            sharding=ShardingConfig(shards=4, backend="process"),
            durability=DurabilityConfig(fsync_every=8),
            tenancy=TenancyConfig(max_bytes=1 << 20),
        )
        # Old readers (service layer, multi-engine) still see the flat
        # attributes.
        assert config.shards == 4
        assert config.parallel_backend == "process"
        assert config.wal_fsync_every == 8
        assert config.tenant_max_bytes == 1 << 20

    def test_conflicting_flat_and_nested_fail_naming_the_new_path(self):
        with pytest.raises(ConfigError, match="ShardingConfig"):
            EngineConfig(shards=2, sharding=ShardingConfig(shards=4))

    def test_agreeing_flat_and_nested_coexist_for_replace(self):
        config = EngineConfig(sharding=ShardingConfig(shards=2))
        # dataclasses.replace re-passes the mirrored flats alongside the
        # nested group; agreement must not be treated as a conflict.
        again = replace(config, global_quota=4)
        assert again.sharding.shards == 2
        assert again.shards == 2

    def test_nested_validation_names_the_nested_field(self):
        with pytest.raises(ConfigError, match="sharding.shards"):
            ShardingConfig(shards=0)
        with pytest.raises(ConfigError, match="sharding.sync_every_updates"):
            ShardingConfig(sync_every_updates=0)
        with pytest.raises(
            ConfigError, match="durability.checkpoint_interval"
        ):
            DurabilityConfig(checkpoint_interval=0)
        with pytest.raises(ConfigError, match="tenancy.min_bytes"):
            TenancyConfig(min_bytes=-1)

    def test_flat_validation_messages_are_preserved(self):
        with pytest.raises(PlanError, match="shards must be >= 1"):
            EngineConfig(shards=0)
        with pytest.raises(ConfigError, match="wal_fsync_every"):
            EngineConfig(wal_fsync_every=0)
        with pytest.raises(ConfigError, match="cache_recovery"):
            EngineConfig(cache_recovery="magic")


class TestUnifiedRunApi:
    def test_run_dispatches_on_the_sharding_config(self):
        serial = Session.adaptive(FACTORY).run(arrivals=300)
        sharded = Session.adaptive(
            FACTORY, EngineConfig(sharding=ShardingConfig(shards=2))
        ).run(arrivals=300)
        # One entry point, two execution paths: the sharded result is
        # the parallel stats object, the serial one the engine report.
        # run() returns deltas from both paths — the sharded path is
        # merged back into global arrival order.
        assert serial and sharded
        assert len(sharded) == len(serial)

    def test_run_sharded_is_a_deprecation_shim_over_execute(self):
        session = Session.adaptive(
            FACTORY, EngineConfig(sharding=ShardingConfig(shards=2))
        )
        with pytest.warns(DeprecationWarning, match="execute"):
            shimmed = session.run_sharded(300)
        direct = session.execute(300)
        assert shimmed.stats.used_caches == direct.stats.used_caches
        assert (
            shimmed.stats.source_updates == direct.stats.source_updates
        )

    def test_execute_itself_does_not_warn(self):
        session = Session.adaptive(
            FACTORY, EngineConfig(sharding=ShardingConfig(shards=2))
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.execute(300)

    def test_coordinate_false_opts_out_of_the_adaptivity_plane(self):
        session = Session.adaptive(
            FACTORY,
            EngineConfig(
                sharding=ShardingConfig(shards=2, coordinate=False)
            ),
        )
        spec = session.experiment(300)
        assert spec.adaptivity is None
        coordinated = Session.adaptive(
            FACTORY, EngineConfig(sharding=ShardingConfig(shards=2))
        ).experiment(300)
        assert coordinated.adaptivity is not None
        assert coordinated.adaptivity.sync_every_updates == 2000
