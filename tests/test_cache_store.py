"""Tests for the direct-mapped / LRU stores and the Bloom estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.bloom import BloomFilter, MissProbEstimator
from repro.caching.store import DirectMappedStore, LRUStore


class TestDirectMappedStore:
    def test_put_get_remove(self):
        store = DirectMappedStore(buckets=8)
        store.put(("k",), {"v": 1})
        assert store.get(("k",)) == {"v": 1}
        assert store.remove(("k",))
        assert store.get(("k",)) is None
        assert not store.remove(("k",))

    def test_same_key_overwrite_returns_displaced(self):
        store = DirectMappedStore(buckets=8)
        store.put((1,), "old")
        displaced = store.put((1,), "new")
        assert displaced == ((1,), "old")
        assert store.replacements == 0  # same key is not a collision

    def test_collision_replaces(self):
        store = DirectMappedStore(buckets=1)
        store.put((1,), "a")
        displaced = store.put((2,), "b")
        assert displaced == ((1,), "a")
        assert store.replacements == 1
        assert store.get((1,)) is None
        assert store.get((2,)) == "b"

    def test_get_other_key_same_bucket_misses(self):
        store = DirectMappedStore(buckets=1)
        store.put((1,), "a")
        assert store.get((2,)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DirectMappedStore(0)

    def test_clear_and_entries(self):
        store = DirectMappedStore(buckets=64)
        for i in range(5):
            store.put((i,), i)
        assert len(store) == len(list(store.entries()))
        store.clear()
        assert len(store) == 0


class TestLRUStore:
    def test_evicts_least_recently_used(self):
        store = LRUStore(capacity=2)
        store.put((1,), "a")
        store.put((2,), "b")
        store.get((1,))  # refresh 1
        evicted = store.put((3,), "c")
        assert evicted == ((2,), "b")
        assert store.get((1,)) == "a"

    def test_same_key_reput(self):
        store = LRUStore(capacity=1)
        store.put((1,), "a")
        displaced = store.put((1,), "b")
        assert displaced == ((1,), "a")
        assert store.get((1,)) == "b"

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUStore(0)


class TestBloomFilter:
    def test_membership_no_false_negatives(self):
        bloom = BloomFilter(bits=256, hashes=2)
        keys = [(i,) for i in range(20)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_distinct_estimate_tracks_truth(self):
        bloom = BloomFilter(bits=4096, hashes=2)
        for i in range(100):
            bloom.add((i,))
            bloom.add((i,))  # duplicates must not inflate
        estimate = bloom.distinct_estimate()
        assert 70 <= estimate <= 130

    def test_reset(self):
        bloom = BloomFilter(bits=64)
        bloom.add((1,))
        bloom.reset()
        assert bloom.set_bits == 0
        assert (1,) not in bloom

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0)
        with pytest.raises(ValueError):
            BloomFilter(bits=8, hashes=0)


class TestMissProbEstimator:
    def test_all_distinct_keys_give_high_miss_prob(self):
        estimator = MissProbEstimator(window_tuples=32, alpha=8.0)
        observation = None
        for i in range(32):
            observation = estimator.observe((i,)) or observation
        assert observation is not None
        assert observation > 0.7

    def test_repeated_key_gives_low_miss_prob(self):
        estimator = MissProbEstimator(window_tuples=32, alpha=8.0)
        observation = None
        for _ in range(32):
            observation = estimator.observe(("same",)) or observation
        assert observation is not None
        assert observation < 0.2

    def test_window_boundary_only(self):
        estimator = MissProbEstimator(window_tuples=4)
        assert estimator.observe((1,)) is None
        assert estimator.observe((2,)) is None
        assert estimator.observe((3,)) is None
        assert estimator.observe((4,)) is not None
        assert estimator.last_observation is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            MissProbEstimator(window_tuples=0)
        with pytest.raises(ValueError):
            MissProbEstimator(window_tuples=8, alpha=0.5)


@settings(max_examples=40)
@given(keys=st.lists(st.integers(0, 1000), min_size=1, max_size=200))
def test_store_behaves_like_bounded_map(keys):
    """Property: a present key always returns the latest value put for it."""
    store = DirectMappedStore(buckets=16)
    latest = {}
    for i, key in enumerate(keys):
        store.put((key,), i)
        latest[key] = i
    for key, value in latest.items():
        found = store.get((key,))
        assert found is None or found == value
