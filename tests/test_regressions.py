"""Regression tests for defects found and fixed during development.

Each test pins the *specific* failure mode so it cannot silently return;
the scenarios are small and surgical rather than end-to-end.
"""

import pytest

from repro.caching.bloom import MissProbEstimator
from repro.caching.cache import Cache
from repro.caching.key import CacheKey
from repro.core.candidates import enumerate_candidates
from repro.core.wiring import CacheWiring
from repro.engine.runtime import static_plan
from repro.mjoin.executor import MJoinExecutor
from repro.relations.predicates import JoinGraph
from repro.streams.events import Sign
from repro.streams.tuples import CompositeTuple, RowFactory, Schema
from repro.streams.workloads import (
    fig12_workload,
    star_graph,
    three_way_chain,
)

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def chain_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


class TestStoreAccountingRegression:
    """Same-key overwrite once leaked memory accounting: ``put`` returned
    the displaced entry only on cross-key collisions."""

    def test_repeated_creates_keep_bytes_exact(self):
        graph = chain_graph()
        rows = RowFactory()
        key = CacheKey(graph, ("T",), ("S", "R"))
        cache = Cache("c", "T", ("S", "R"), key, buckets=8)
        probe = CompositeTuple.of("T", rows.make((7,)))
        probe_key, _ = cache.probe(probe)
        seg = CompositeTuple.of("S", rows.make((1, 7))).extended(
            "R", rows.make((1,))
        )
        for _ in range(50):
            cache.create(probe_key, [seg])
        single = cache.memory_bytes
        cache.drop_all()
        cache.create(probe_key, [seg])
        assert cache.memory_bytes == single


class TestTransitiveClosureRegression:
    """The star query's non-adjacent joins were once invisible: only 5 of
    15 join trees enumerated and some MJoin orders became cross products."""

    def test_non_adjacent_pair_connected(self):
        graph = star_graph(4)
        assert graph.are_connected(["R1"], ["R3"])
        assert graph.predicates_between(["R1"], "R4")

    def test_key_components_deduped_for_sharing(self):
        graph = star_graph(4)
        # Prefix {R3, R4} reaches both segment attrs twice via closure;
        # duplicate components would break Definition 4.1 sharing.
        key_wide = CacheKey(graph, ("R3", "R4"), ("R1", "R2"))
        key_narrow = CacheKey(graph, ("R3",), ("R1", "R2"))
        assert key_wide.signature() == key_narrow.signature()
        assert key_wide.width == 2


class TestGlobalCacheDeleteRegressions:
    """Owner-anchored globally-consistent caches: a delete that removes
    the last owner witness must consume the probed entry, while deletes
    with surviving witnesses must not (the early implementation consumed
    always, collapsing Figure 12's static plan)."""

    def wire(self, duplicate_owner_rows):
        workload = three_way_chain(
            t_multiplicity=2.0, window_r=16, window_s=16
        )
        executor = MJoinExecutor(workload.graph, orders=CHAIN_ORDERS)
        candidates = {
            c.candidate_id: c
            for c in enumerate_candidates(
                workload.graph, executor.orders(), global_quota=8
            )
        }
        wiring = CacheWiring(executor)
        wired = wiring.attach(candidates["R:0-1g"])
        rows = RowFactory()
        r1 = rows.make((5,))
        executor.process(
            __import__("repro.streams.events", fromlist=["Update"]).Update(
                "R", r1, Sign.INSERT, 0
            )
        )
        extra = None
        if duplicate_owner_rows:
            extra = rows.make((5,))
            executor.process(
                __import__(
                    "repro.streams.events", fromlist=["Update"]
                ).Update("R", extra, Sign.INSERT, 1)
            )
        return executor, wired, r1

    def test_last_witness_delete_consumes_entry(self):
        from repro.streams.events import Update

        executor, wired, r1 = self.wire(duplicate_owner_rows=False)
        assert wired.cache.entry_count == 1
        executor.process(Update("R", r1, Sign.DELETE, 10))
        assert wired.cache.entry_count == 0

    def test_survivor_witness_delete_keeps_entry(self):
        from repro.streams.events import Update

        executor, wired, r1 = self.wire(duplicate_owner_rows=True)
        assert wired.cache.entry_count == 1
        executor.process(Update("R", r1, Sign.DELETE, 10))
        assert wired.cache.entry_count == 1  # another A=5 row survives


class TestBurstWorkloadRegression:
    """The Figure 12 workload once used aligned sequential counters; a
    rate burst silently de-aligned them and ∆R's selectivity collapsed to
    zero, inverting the figure."""

    def test_burst_preserves_join_selectivity(self):
        workload = fig12_workload(burst_after_arrivals=2000, window=48)
        executor = MJoinExecutor(
            workload.graph, orders=CHAIN_ORDERS
        )
        r_outputs_pre = r_probes_pre = 0
        r_outputs_post = r_probes_post = 0
        arrivals = 0
        for update in workload.updates(4000):
            outputs = executor.process(update)
            if update.sign is Sign.INSERT:
                arrivals += 1
            if update.relation == "R" and update.sign is Sign.INSERT:
                if arrivals < 2000:
                    r_probes_pre += 1
                    r_outputs_pre += len(outputs)
                else:
                    r_probes_post += 1
                    r_outputs_post += len(outputs)
        assert r_probes_post > 2 * r_probes_pre  # the burst happened
        pre_rate = r_outputs_pre / max(1, r_probes_pre)
        post_rate = r_outputs_post / max(1, r_probes_post)
        # Selectivity survives the burst (within generous noise).
        assert post_rate > 0.3 * pre_rate


class TestSignAwareBloomRegression:
    """miss_prob was once wildly overestimated for windowed streams: the
    deletion of every window tuple re-probes its key, which a short
    distinct-count window cannot see."""

    def test_insert_delete_pairs_estimated_low(self):
        estimator = MissProbEstimator(window_tuples=64, alpha=8.0)
        observation = None
        for i in range(32):
            estimator.observe((i,), True)            # fresh inserts
            result = estimator.observe((i - 100,), False)  # old deletes
            observation = result or observation
        assert observation is not None
        assert observation < 0.65  # ≈ 32 distinct / 64 tuples

    def test_sign_blind_mode_counts_everything(self):
        estimator = MissProbEstimator(
            window_tuples=64, alpha=8.0, sign_aware=False
        )
        observation = None
        for i in range(32):
            estimator.observe((i,), True)
            result = estimator.observe((i + 1000,), False)
            observation = result or observation
        assert observation is not None
        assert observation > 0.8


class TestStaticPlanSegmentOrderRegression:
    """Figure 12's static R⋈(T⋈S) plan was once built with the segment
    ordered (T, S): ∆R misses degenerated to a cross product with T. The
    (S, T) order probes S's index on the key first."""

    def test_global_cache_misses_are_not_cross_products(self):
        workload = fig12_workload(burst_after_arrivals=10**9, window=48)
        plan = static_plan(
            workload, orders=CHAIN_ORDERS, candidate_ids=["R:0-1g"]
        )
        first_op = plan.executor.pipelines["R"].operators[0]
        assert not first_op.is_cross_product()
        assert first_op.target == "S"
