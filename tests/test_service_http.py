"""The hand-rolled wire layer: HTTP/1.1 parsing and WebSocket framing.

No sockets here — ``read_request``/``read_ws_frame`` take an
``asyncio.StreamReader``, so every test feeds bytes directly and the
slow-client deadline is exercised with a reader that simply never
receives the rest.
"""

import asyncio

import pytest

from repro.service.http import (
    BadRequest,
    HttpRequest,
    OP_CLOSE,
    OP_PING,
    OP_TEXT,
    SlowClient,
    encode_ws_frame,
    json_response,
    read_request,
    read_ws_frame,
    response_bytes,
    websocket_accept,
)


def _reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def _parse(data: bytes, eof: bool = True, header_deadline_s: float = 5.0):
    async def run():
        return await read_request(
            _reader(data, eof), header_deadline_s, body_deadline_s=5.0
        )

    return asyncio.run(run())


def test_parses_request_line_query_headers_and_body():
    request = _parse(
        b"POST /v1/queries/q/ingest?tenant=a&x=1&x=2 HTTP/1.1\r\n"
        b"Content-Length: 9\r\n"
        b"X-Custom: hello\r\n"
        b"\r\n"
        b'{"k":"v"}'
    )
    assert request.method == "POST"
    assert request.path == "/v1/queries/q/ingest"
    assert request.query == {"tenant": "a", "x": "2"}  # last value wins
    assert request.header("x-custom") == "hello"
    assert request.header("X-CUSTOM") == "hello"       # case-insensitive
    assert request.json() == {"k": "v"}


def test_clean_eof_before_any_bytes_is_none():
    assert _parse(b"") is None


@pytest.mark.parametrize(
    "raw",
    [
        b"GET\r\n\r\n",                       # too few request-line parts
        b"GET / SPDY/3\r\n\r\n",              # not HTTP/1.x
        b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"GET / HT",                          # EOF mid-head
    ],
)
def test_malformed_requests_raise_bad_request(raw):
    with pytest.raises(BadRequest):
        _parse(raw)


def test_body_larger_than_max_is_rejected():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100

    async def run():
        return await read_request(
            _reader(raw), 5.0, body_deadline_s=5.0, max_body=10
        )

    with pytest.raises(BadRequest):
        asyncio.run(run())


def test_header_deadline_raises_slow_client():
    # Head never completes and EOF never arrives: the deadline must fire.
    with pytest.raises(SlowClient):
        _parse(b"GET / HTTP/1.1\r\nX-Trickle: 1", eof=False,
               header_deadline_s=0.05)


def test_invalid_json_body_raises_bad_request():
    request = HttpRequest(method="POST", path="/", body=b"{nope")
    with pytest.raises(BadRequest):
        request.json()


def test_response_bytes_shape_and_headers():
    raw = response_bytes(429, b'{"e":1}', headers={"Retry-After": "2.5"})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
    assert b"Retry-After: 2.5" in head
    assert b"Connection: close" in head
    assert body == b'{"e":1}'
    assert json_response(200, {"a": 1}).endswith(b'{"a":1}')


def test_websocket_accept_rfc6455_vector():
    # The worked example from RFC 6455 section 1.3.
    assert (
        websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


@pytest.mark.parametrize("mask", [False, True])
@pytest.mark.parametrize(
    "payload",
    [b"", b"hi", b"x" * 125, b"y" * 126, b"z" * 70_000],
)
def test_ws_frame_roundtrip(mask, payload):
    raw = encode_ws_frame(OP_TEXT, payload, mask=mask)

    async def run():
        return await read_ws_frame(_reader(raw))

    opcode, decoded = asyncio.run(run())
    assert opcode == OP_TEXT
    assert decoded == payload


def test_ws_control_frames_roundtrip():
    raw = encode_ws_frame(OP_PING, b"ping") + encode_ws_frame(OP_CLOSE, b"")

    async def run():
        reader = _reader(raw)
        return [await read_ws_frame(reader), await read_ws_frame(reader)]

    frames = asyncio.run(run())
    assert frames == [(OP_PING, b"ping"), (OP_CLOSE, b"")]


def test_ws_frame_timeout():
    async def run():
        reader = asyncio.StreamReader()  # nothing ever arrives
        await read_ws_frame(reader, timeout=0.05)

    with pytest.raises(asyncio.TimeoutError):
        asyncio.run(run())
