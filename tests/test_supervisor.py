"""Supervised parallel execution: restarts, backoff, circuit breaker.

The supervisor's contract is that worker failure is invisible in the
output: a crashed shard worker is restarted from its checkpoint (or,
past ``max_restarts``, re-run serially in the parent) and the merged
result is identical to an undisturbed sharded run.
"""

from functools import partial

import pytest

from repro.api import EngineConfig, Session
from repro.errors import ConfigError
from repro.obs.decisions import WORKER_FALLBACK, WORKER_RESTART
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.supervisor import (
    SupervisionConfig,
    Supervisor,
    SupervisedRun,
    WorkerCrash,
)
from repro.streams.workloads import fig9_workload

FACTORY = partial(fig9_workload, 3, window=24)
ARRIVALS = 600
SHARDS = 2

FAST_SUPERVISION = SupervisionConfig(
    heartbeat_every_updates=50,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
)


def _spec():
    return Session.adaptive(FACTORY, EngineConfig(shards=SHARDS)).experiment(
        ARRIVALS, output_mode="canonical", collect_windows=True
    )


@pytest.fixture(scope="module")
def clean():
    return run_sharded(_spec(), ParallelConfig(shards=SHARDS, backend="serial"))


def test_no_crashes_matches_plain_sharded(clean):
    run = Supervisor(FAST_SUPERVISION).run(_spec(), SHARDS)
    assert isinstance(run, SupervisedRun)
    assert run.total_restarts == 0 and run.fallbacks == []
    assert run.merged_canonical() == clean.merged_canonical()
    assert run.merged_windows() == clean.merged_windows()


def test_crashed_worker_restarts_and_output_is_identical(tmp_path, clean):
    recovery = EngineConfig(
        shards=SHARDS, wal_dir=str(tmp_path), checkpoint_interval=100
    ).recovery()
    run = Supervisor(FAST_SUPERVISION, recovery=recovery).run(
        _spec(), SHARDS, crashes=[WorkerCrash(shard=1, after_updates=80)]
    )
    assert run.restarts == {1: 1}
    assert run.fallbacks == []
    assert [d["action"] for d in run.decisions] == [WORKER_RESTART]
    assert run.merged_canonical() == clean.merged_canonical()
    assert run.merged_windows() == clean.merged_windows()


def test_repeated_crashes_trip_circuit_breaker_to_serial(tmp_path, clean):
    supervision = SupervisionConfig(
        heartbeat_every_updates=50,
        max_restarts=2,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
    )
    recovery = EngineConfig(
        shards=SHARDS, wal_dir=str(tmp_path), checkpoint_interval=100
    ).recovery()
    run = Supervisor(supervision, recovery=recovery).run(
        _spec(),
        SHARDS,
        crashes=[WorkerCrash(shard=0, after_updates=60, attempts=99)],
    )
    assert run.restarts == {0: 2}
    assert run.fallbacks == [0]
    assert [d["action"] for d in run.decisions] == [
        WORKER_RESTART,
        WORKER_RESTART,
        WORKER_FALLBACK,
    ]
    assert run.merged_canonical() == clean.merged_canonical()
    assert run.merged_windows() == clean.merged_windows()


def _hang_in_workers_factory():
    """Workload factory that wedges inside worker processes only.

    The parent (``MainProcess``) builds the workload instantly, so the
    circuit breaker's in-parent serial fallback completes; every spawned
    worker stalls past the heartbeat timeout and is declared hung.
    """
    import multiprocessing
    import time as _time

    if multiprocessing.current_process().name != "MainProcess":
        _time.sleep(60.0)  # far past heartbeat_timeout_s; killed first
    return fig9_workload(3, window=24)


def test_repeated_worker_hangs_trip_circuit_breaker(clean):
    supervision = SupervisionConfig(
        heartbeat_every_updates=50,
        heartbeat_timeout_s=0.3,
        max_restarts=1,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
    )
    spec = Session.adaptive(
        _hang_in_workers_factory, EngineConfig(shards=SHARDS)
    ).experiment(ARRIVALS, output_mode="canonical", collect_windows=True)
    run = Supervisor(supervision).run(spec, SHARDS)
    # Every shard hung, was killed, hung again on its one restart, and
    # was then circuit-broken to in-parent serial execution.
    assert run.restarts == {0: 1, 1: 1}
    assert sorted(run.fallbacks) == [0, 1]
    restart_reasons = [
        d["reason"] for d in run.decisions if d["action"] == WORKER_RESTART
    ]
    assert restart_reasons and all(
        "no heartbeat" in reason for reason in restart_reasons
    )
    assert run.merged_canonical() == clean.merged_canonical()
    assert run.merged_windows() == clean.merged_windows()


def test_backoff_is_bounded_exponential():
    config = SupervisionConfig(backoff_base_s=0.05, backoff_max_s=0.4)
    assert config.backoff_s(1) == pytest.approx(0.05)
    assert config.backoff_s(2) == pytest.approx(0.10)
    assert config.backoff_s(3) == pytest.approx(0.20)
    assert config.backoff_s(4) == pytest.approx(0.40)
    assert config.backoff_s(10) == pytest.approx(0.40)  # capped


@pytest.mark.parametrize(
    "kwargs, needle",
    [
        (dict(heartbeat_every_updates=0), "heartbeat_every_updates"),
        (dict(heartbeat_timeout_s=0), "heartbeat_timeout_s"),
        (dict(max_restarts=-1), "max_restarts"),
        (dict(backoff_base_s=-0.1), "backoff_base_s"),
        (dict(backoff_max_s=-1.0), "backoff_max_s"),
    ],
)
def test_supervision_config_validation(kwargs, needle):
    with pytest.raises(ConfigError) as err:
        SupervisionConfig(**kwargs)
    assert needle in str(err.value)


def test_worker_crash_validation():
    with pytest.raises(ConfigError):
        WorkerCrash(shard=-1, after_updates=5)
    with pytest.raises(ConfigError):
        WorkerCrash(shard=0, after_updates=0)
    with pytest.raises(ConfigError):
        WorkerCrash(shard=0, after_updates=5, attempts=0)


def test_session_facade_requires_supervision_for_crashes():
    session = Session.adaptive(FACTORY, EngineConfig(shards=SHARDS))
    with pytest.raises(ConfigError):
        session.execute(
            arrivals=ARRIVALS,
            crashes=[WorkerCrash(shard=0, after_updates=10)],
        )
