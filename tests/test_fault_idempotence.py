"""Property: quarantine makes duplicate/orphan faults state-invisible.

A :class:`FaultPlan` injecting only duplicate inserts (whose matching
deletes also ride twice) and orphaned deletes perturbs the *stream* but
not the *information* in it. A guarded engine must therefore end in
exactly the clean run's state: same live window contents, same cache
store entries, same emitted-result multiset — with every injected update
accounted for in the dead-letter counters.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.figures import CHAIN_ORDERS, FORCED_CACHE
from repro.engine.runtime import static_plan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.resilience import ResilienceConfig
from repro.streams.workloads import three_way_chain

ARRIVALS = 300


def build_plan(guarded: bool):
    workload = three_way_chain(t_multiplicity=3.0, window_r=32, window_s=32)
    resilience = (
        ResilienceConfig(shedding=None, auditor=None) if guarded else None
    )
    plan = static_plan(
        workload,
        orders=CHAIN_ORDERS,
        candidate_ids=[FORCED_CACHE],
        resilience=resilience,
    )
    return plan, workload


def canonical(delta):
    composite = delta.composite
    return (
        int(delta.sign),
        tuple(
            sorted(
                (relation, composite.row(relation).values)
                for relation in composite.relations()
            )
        ),
    )


def drive(plan, updates):
    outputs = Counter()
    for update in updates:
        for delta in plan.process(update):
            outputs[canonical(delta)] += 1
    return outputs


def state_snapshot(plan):
    relations = {
        name: frozenset((row.rid, row.values) for row in rel.rows())
        for name, rel in plan.executor.relations.items()
    }
    stores = {
        cid: {
            key: frozenset(value.keys())
            for key, value in wired.cache.store.entries()
            if value
        }
        for cid, wired in plan.wiring.wired.items()
    }
    return relations, stores


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    duplicate_prob=st.floats(0.0, 0.3),
    orphan_prob=st.floats(0.0, 0.3),
)
def test_duplicate_and_orphan_faults_leave_no_trace(
    seed, duplicate_prob, orphan_prob
):
    clean_plan, clean_workload = build_plan(guarded=False)
    clean_outputs = drive(clean_plan, clean_workload.updates(ARRIVALS))
    clean_state = state_snapshot(clean_plan)

    spec = FaultSpec(
        duplicate_prob=duplicate_prob, orphan_delete_prob=orphan_prob
    )
    fault_plan = FaultPlan(spec, seed=seed)
    guarded_plan, workload = build_plan(guarded=True)
    faulted_outputs = drive(
        guarded_plan, fault_plan.updates(workload.updates(ARRIVALS))
    )

    assert faulted_outputs == clean_outputs
    assert state_snapshot(guarded_plan) == clean_state
    # Every injected update was quarantined, none slipped through.
    expected = (
        fault_plan.counts["duplicates"]
        + fault_plan.counts["duplicate_deletes"]
        + fault_plan.counts["orphans"]
    )
    assert guarded_plan.resilience.quarantined == expected


def test_orphan_deletes_quarantined_without_state_change():
    clean_plan, clean_workload = build_plan(guarded=False)
    clean_outputs = drive(clean_plan, clean_workload.updates(ARRIVALS))
    clean_state = state_snapshot(clean_plan)

    fault_plan = FaultPlan(FaultSpec(orphan_delete_prob=0.2), seed=42)
    guarded_plan, workload = build_plan(guarded=True)
    faulted_outputs = drive(
        guarded_plan, fault_plan.updates(workload.updates(ARRIVALS))
    )

    assert fault_plan.counts["orphans"] > 0
    assert faulted_outputs == clean_outputs
    assert state_snapshot(guarded_plan) == clean_state
    guard = guarded_plan.resilience.guard
    assert guard.by_reason == {"orphan_delete": fault_plan.counts["orphans"]}
