"""The chaos campaign matrix and its CI gate."""

import importlib.util
import json
import os

import pytest

from repro.cli import main
from repro.errors import ScenarioError
from repro.scenarios.matrix import (
    EXECUTION_MODES,
    FAULT_PLANS,
    format_matrix_report,
    matrix_to_json,
    run_matrix,
)

GATE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "check_chaos_matrix.py"
)


def _gate():
    spec = importlib.util.spec_from_file_location(
        "check_chaos_matrix", GATE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(
        scenarios=["flash_crowd"],
        plans=["none", "dup_reorder"],
        modes=["serial", "batched", "sharded"],
        arrivals=400,
    )


def test_small_matrix_passes_every_cell(small_matrix):
    assert small_matrix["totals"]["fail"] == 0
    assert small_matrix["totals"]["cells"] == 6
    for cell in small_matrix["cells"]:
        assert cell["verdict"] == "PASS"
        assert all(cell["invariants"].values())
        # Every non-serial cell reproduces its pair's serial digest.
        if cell["mode"] != "serial":
            assert cell["digest"] == cell["reference_digest"]


def test_faulted_cells_quarantine_every_injected_corruption():
    payload = run_matrix(
        scenarios=["delete_storm"],
        plans=["drop_orphan_corrupt"],
        modes=["serial"],
        arrivals=400,
    )
    (cell,) = payload["cells"]
    injected = cell["injected"]
    assert injected["corrupted"] + injected["orphans"] > 0
    assert cell["quarantined"] >= injected["corrupted"] + injected["orphans"]
    assert cell["shed"] == 0


def test_crash_cells_are_skipped_outside_restartable_modes():
    payload = run_matrix(
        scenarios=["flash_crowd"],
        plans=["crash"],
        modes=["batched", "multi"],
        arrivals=400,
    )
    for cell in payload["cells"]:
        assert cell["verdict"] == "SKIPPED"
        assert cell["detail"]


def test_matrix_rejects_unknown_plans_and_modes():
    with pytest.raises(ScenarioError, match="fault plan"):
        run_matrix(plans=["nope"], arrivals=100)
    with pytest.raises(ScenarioError, match="execution mode"):
        run_matrix(modes=["nope"], arrivals=100)


def test_matrix_json_is_deterministic(small_matrix):
    again = run_matrix(
        scenarios=["flash_crowd"],
        plans=["none", "dup_reorder"],
        modes=["serial", "batched", "sharded"],
        arrivals=400,
    )
    assert matrix_to_json(again) == matrix_to_json(small_matrix)


def test_report_formats_without_error(small_matrix):
    report = format_matrix_report(small_matrix)
    assert "chaos matrix" in report
    assert "flash_crowd" in report


def test_gate_accepts_a_clean_matrix(small_matrix, capsys):
    gate = _gate()
    assert gate.check(json.loads(matrix_to_json(small_matrix))) == 0
    assert "ok:" in capsys.readouterr().out


def test_gate_fails_a_synthetically_regressed_cell(small_matrix, capsys):
    # The negative test the acceptance criteria demand: flip one cell's
    # byte-identity invariant and the gate must go red.
    gate = _gate()
    payload = json.loads(matrix_to_json(small_matrix))
    victim = payload["cells"][3]
    victim["verdict"] = "FAIL"
    victim["invariants"]["byte_identical"] = False
    assert gate.check(payload) == 1
    err = capsys.readouterr().err
    assert "FAIL" in err and victim["scenario"] in err


def test_gate_baseline_catches_verdict_regressions(small_matrix, capsys):
    gate = _gate()
    baseline = json.loads(matrix_to_json(small_matrix))
    fresh = json.loads(matrix_to_json(small_matrix))
    fresh["cells"][0]["verdict"] = "SKIPPED"
    fresh["cells"][0]["detail"] = "synthetic"
    assert gate.check(fresh, baseline) == 1
    assert "regressed" in capsys.readouterr().err
    # A reduced slice is fine (CI smoke runs one against the full
    # committed matrix) — but a disjoint campaign compares nothing.
    sliced = json.loads(matrix_to_json(small_matrix))
    sliced["cells"] = sliced["cells"][1:]
    sliced["totals"]["cells"] -= 1
    assert gate.check(sliced, baseline) == 0
    capsys.readouterr()
    disjoint = json.loads(matrix_to_json(small_matrix))
    for cell in disjoint["cells"]:
        cell["scenario"] = "scenario:other"
    assert gate.check(disjoint, baseline) == 1
    assert "no (scenario, plan, mode)" in capsys.readouterr().err


def test_gate_main_runs_against_a_file(small_matrix, tmp_path, capsys):
    gate = _gate()
    path = tmp_path / "matrix.json"
    path.write_text(matrix_to_json(small_matrix))
    assert gate.main([str(path), "--baseline", str(path)]) == 0
    capsys.readouterr()
    not_matrix = tmp_path / "other.json"
    not_matrix.write_text(json.dumps({"kind": "parallel_bench"}))
    with pytest.raises(SystemExit):
        gate.main([str(not_matrix)])


def test_matrix_cli_writes_the_artifact(tmp_path, capsys):
    out = tmp_path / "matrix.json"
    assert (
        main(
            [
                "chaos",
                "matrix",
                "--scenarios",
                "flash_crowd",
                "--plans",
                "none",
                "--modes",
                "serial,batched",
                "--arrivals",
                "400",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["kind"] == "chaos_matrix"
    assert payload["totals"]["fail"] == 0


@pytest.mark.slow
def test_full_plan_and_mode_coverage_on_one_scenario():
    # Every fault plan x every execution mode on one scenario, at a
    # reduced arrival count: the full-shape sweep the committed
    # artifact runs at 1500 arrivals across all five scenarios.
    payload = run_matrix(
        scenarios=["delete_storm"],
        plans=list(FAULT_PLANS),
        modes=list(EXECUTION_MODES),
        arrivals=600,
    )
    assert payload["totals"]["fail"] == 0
    assert payload["totals"]["cells"] == len(FAULT_PLANS) * len(
        EXECUTION_MODES
    )
    verdicts = {
        (c["plan"], c["mode"]): c["verdict"] for c in payload["cells"]
    }
    assert verdicts[("crash", "serial")] == "RECOVERED"
    assert verdicts[("crash", "supervised")] == "RECOVERED"
    assert verdicts[("crash", "batched")] == "SKIPPED"
    assert verdicts[("dup_reorder", "multi")] == "SKIPPED"
