"""Partitioning: equivalence classes, scheme choice, and routing."""

import zlib

import pytest

from repro.errors import ParallelError
from repro.parallel.partitioner import (
    attribute_classes,
    choose_scheme,
    scheme_for_workload,
    stable_hash,
)
from repro.streams.events import Sign
from repro.streams.workloads import fig9_workload, three_way_chain


def chain():
    return three_way_chain(t_multiplicity=5.0, window_r=64, window_s=64)


def test_stable_hash_is_process_independent():
    # ints map to themselves, strings and tuples through CRC32 — no
    # PYTHONHASHSEED salting anywhere.
    assert stable_hash(7) == 7
    assert stable_hash("abc") == zlib.crc32(b"abc")
    assert stable_hash((1, 2)) == zlib.crc32(repr((1, 2)).encode("utf-8"))


def test_attribute_classes_follow_the_closure():
    classes = attribute_classes(chain().graph)
    as_sets = [
        {(ref.relation, ref.attribute) for ref in cls} for cls in classes
    ]
    assert {("R", "A"), ("S", "A")} in as_sets
    assert {("S", "B"), ("T", "B")} in as_sets
    assert len(classes) == 2


def test_scheme_broadcasts_the_cheapest_relation():
    # T arrives 5x as often as R, so the chosen class must cover T:
    # partition {S.B, T.B} and broadcast only R.
    scheme = scheme_for_workload(chain(), 3)
    assert scheme.broadcast == ("R",)
    assert set(scheme.partitioned) == {"S", "T"}


def test_star_join_partitions_every_relation():
    scheme = scheme_for_workload(fig9_workload(4), 4)
    assert scheme.broadcast == ()
    assert scheme.partitioned == ("R1", "R2", "R3", "R4")


def test_routing_is_deterministic_and_covers_shards():
    workload = chain()
    scheme = scheme_for_workload(workload, 3)
    seen_shards = set()
    for update in workload.updates(300):
        shards = scheme.shards_for(update)
        assert shards == scheme.shards_for(update)  # deterministic
        if update.relation in scheme.broadcast:
            assert shards == (0, 1, 2)
        else:
            assert len(shards) == 1
            seen_shards.add(shards[0])
    assert seen_shards == {0, 1, 2}


def test_equal_join_values_co_locate():
    # The equivalence class guarantees every relation partitions on a
    # column that is equal across a result tuple, so the same value maps
    # to the same shard no matter which relation carries it.
    scheme = scheme_for_workload(chain(), 5)
    for value in (0, 1, 17, "x"):
        assert scheme.shard_of_value(value) == stable_hash(value) % 5


def test_single_shard_routes_everything_to_shard_zero():
    workload = chain()
    scheme = scheme_for_workload(workload, 1)
    for update in workload.updates(50):
        assert scheme.shards_for(update) == (0,)


def test_inserts_and_deletes_of_one_row_agree():
    workload = chain()
    scheme = scheme_for_workload(workload, 4)
    homes = {}
    for update in workload.updates(400):
        if update.relation in scheme.broadcast:
            continue
        key = (update.relation, update.row.rid)
        shards = scheme.shards_for(update)
        if update.sign is Sign.DELETE:
            assert homes.get(key) == shards
        else:
            homes[key] = shards


def test_invalid_shard_counts_are_rejected():
    with pytest.raises(ParallelError):
        choose_scheme(chain().graph, 0)
    with pytest.raises(ParallelError):
        scheme_for_workload(chain(), -2)
