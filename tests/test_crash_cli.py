"""The crash-chaos CLI surface: ``chaos --crash``, ``recover``, bench.

End-to-end through ``repro.cli.main`` with small arrival counts, pinning
the RECOVERED verdict, the ``--no-recover`` + ``recover DIR`` round
trip, the dead-letter dump, the recovery bench, and clean error mapping.
"""

import json

import pytest

from repro.cli import main
from repro.errors import RecoveryError
from repro.faults.crashes import (
    read_manifest,
    recover_and_verify,
    run_crash_chaos,
)

CRASH_ARGS = [
    "chaos",
    "demo",
    "--crash",
    "at_event",
    "--arrivals",
    "1000",
    "--seed",
    "3",
    "--checkpoint-interval",
    "150",
]


@pytest.mark.parametrize("kind", ["at_event", "torn_tail", "during_checkpoint"])
def test_crash_chaos_reports_recovered(kind, capsys):
    args = list(CRASH_ARGS)
    args[args.index("at_event")] = kind
    assert main(args) == 0
    out = capsys.readouterr().out
    assert f"crash chaos demo — kind {kind}" in out
    assert "verdict: RECOVERED" in out


def test_crash_chaos_rebuild_mode(capsys):
    assert main(CRASH_ARGS + ["--cache-mode", "rebuild"]) == 0
    out = capsys.readouterr().out
    assert "mode=rebuild" in out
    assert "verdict: RECOVERED" in out


def test_crash_chaos_sharded(capsys):
    assert main(CRASH_ARGS + ["--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shards" in out
    assert "verdict: RECOVERED" in out


def test_no_recover_then_recover_round_trip(tmp_path, capsys):
    wal_dir = str(tmp_path / "journal")
    assert (
        main(CRASH_ARGS + ["--wal-dir", wal_dir, "--no-recover"]) == 0
    )
    out = capsys.readouterr().out
    assert "left crashed (--no-recover)" in out
    manifest = read_manifest(wal_dir)
    assert manifest["experiment"] == "demo"
    # Second process: repro recover DIR picks the journal back up.
    assert main(["recover", wal_dir]) == 0
    out = capsys.readouterr().out
    assert "verdict: RECOVERED" in out
    # Recovery is idempotent — a second invocation verifies again.
    assert main(["recover", wal_dir]) == 0
    assert "verdict: RECOVERED" in capsys.readouterr().out


def test_recover_without_manifest_is_a_clean_error(tmp_path, capsys):
    assert main(["recover", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "manifest" in err


def test_crash_chaos_bad_kind_is_a_clean_error(capsys):
    assert main(["chaos", "demo", "--crash", "meteor"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "meteor" in err


def test_no_recover_requires_wal_dir(capsys):
    assert main(["chaos", "demo", "--crash", "at_event", "--no-recover"]) == 1
    assert "wal-dir" in capsys.readouterr().err.replace("_", "-")


def test_dump_dead_letters_lists_quarantined_updates(capsys):
    assert (
        main(
            [
                "chaos",
                "demo",
                "--arrivals",
                "1200",
                "--seed",
                "3",
                "--dump-dead-letters",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "dead letters (" in out
    assert "seq=" in out and "rid=" in out


def test_run_crash_chaos_is_deterministic(tmp_path):
    one = run_crash_chaos("demo", seed=7, arrivals=900, checkpoint_interval=150)
    two = run_crash_chaos("demo", seed=7, arrivals=900, checkpoint_interval=150)
    assert one.verified and two.verified
    assert one.kill_at == two.kill_at
    assert one.checkpoint_seq == two.checkpoint_seq
    assert one.replayed == two.replayed


def test_recover_and_verify_direct(tmp_path):
    wal_dir = str(tmp_path / "j")
    report = run_crash_chaos(
        "demo",
        seed=5,
        arrivals=900,
        checkpoint_interval=150,
        wal_dir=wal_dir,
        recover=False,
    )
    assert not report.recovered
    verified = recover_and_verify(wal_dir)
    assert verified.verified
    assert verified.experiment == report.experiment
    assert verified.seed == report.seed


def test_read_manifest_missing_raises():
    with pytest.raises(RecoveryError):
        read_manifest("/nonexistent/journal")


def test_bench_recovery_smoke(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert (
        main(
            [
                "bench",
                "--recovery",
                "--arrivals",
                "1500",
                "--fsync-every",
                "32",
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "recovery overhead bench" in out
    assert "criterion: overhead <= 10%" in out
    payload = json.loads(out_path.read_text())
    assert payload["kind"] == "recovery_bench"
    assert payload["points"][0]["fsync_every"] == 32
    assert (
        payload["points"][0]["outputs_emitted"]
        == payload["baseline"]["outputs_emitted"]
    )
