"""Unit tests for equijoin predicates and the join graph."""

import pytest

from repro.errors import PlanError, SchemaError
from repro.relations.predicates import (
    AttrRef,
    EquiPredicate,
    JoinGraph,
    parse_predicate,
)
from repro.streams.tuples import Schema


def three_way_graph():
    return JoinGraph.parse(
        [Schema("R", ("A",)), Schema("S", ("A", "B")), Schema("T", ("B",))],
        ["R.A = S.A", "S.B = T.B"],
    )


class TestParsePredicate:
    def test_roundtrip(self):
        pred = parse_predicate("R.A = S.B")
        assert pred.left == AttrRef("R", "A")
        assert pred.right == AttrRef("S", "B")

    def test_whitespace_tolerated(self):
        assert parse_predicate("  R.A=S.B ") == parse_predicate("R.A = S.B")

    @pytest.mark.parametrize("bad", ["R.A", "R.A = S", "A = B", "R.A = S.B = T.C"])
    def test_malformed_raises(self, bad):
        with pytest.raises(PlanError):
            parse_predicate(bad)


class TestEquiPredicate:
    def test_side_selection(self):
        pred = parse_predicate("R.A = S.B")
        assert pred.side_for("R") == AttrRef("R", "A")
        assert pred.other_side("R") == AttrRef("S", "B")
        with pytest.raises(PlanError):
            pred.side_for("T")

    def test_relations(self):
        assert parse_predicate("R.A = S.B").relations() == {"R", "S"}


class TestJoinGraph:
    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError, match="unknown relation"):
            JoinGraph.parse([Schema("R", ("A",))], ["R.A = S.A"])

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            JoinGraph.parse(
                [Schema("R", ("A",)), Schema("S", ("A",))], ["R.Z = S.A"]
            )

    def test_self_join_rejected(self):
        with pytest.raises(PlanError, match="self-join"):
            JoinGraph.parse([Schema("R", ("A", "B"))], ["R.A = R.B"])

    def test_predicates_between(self):
        graph = three_way_graph()
        preds = graph.predicates_between(["R"], "S")
        assert len(preds) == 1
        assert preds[0] == parse_predicate("R.A = S.A")
        assert graph.predicates_between(["R"], "T") == []
        assert len(graph.predicates_between(["R", "S"], "T")) == 1

    def test_crossing_predicates(self):
        graph = three_way_graph()
        crossing = graph.crossing_predicates(["T"], ["S", "R"])
        assert crossing == [parse_predicate("S.B = T.B")]

    def test_internal_predicates(self):
        graph = three_way_graph()
        assert len(graph.internal_predicates(["R", "S"])) == 1
        assert graph.internal_predicates(["R", "T"]) == []

    def test_connected_order(self):
        graph = three_way_graph()
        assert graph.connected_order(["R", "S", "T"])
        assert graph.connected_order(["T", "S", "R"])
        assert not graph.connected_order(["R", "T", "S"])

    def test_are_connected(self):
        graph = three_way_graph()
        assert graph.are_connected(["R"], ["S"])
        assert not graph.are_connected(["R"], ["T"])

    def test_duplicate_relations_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            JoinGraph([Schema("R", ("A",)), Schema("R", ("A",))], [])
