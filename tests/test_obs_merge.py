"""Cross-shard telemetry merge: the sharded view must mean the serial one.

The contract: merging four workers' registries yields the same global
totals a serial run reports, every shard stays visible under its own
``shard`` label, the hit rate is recomputed from global sums (never
averaged across shards), and histograms/events merge element-wise into
one chronology.
"""

from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultSpec
from repro.obs.export import registry_to_prometheus
from repro.obs.merge import TelemetrySnapshot, merge_telemetry
from repro.obs.registry import MetricsRegistry
from repro.parallel.engine import ParallelConfig, run_sharded
from repro.parallel.spec import EngineSpec, ExperimentSpec
from repro.streams.workloads import fig9_workload

# Fully partitioned star (one attribute class, nothing broadcast): every
# update lands on exactly one shard, so merged totals equal serial ones
# exactly, not just approximately.
STAR = partial(fig9_workload, 4, window=24)

TOTALS = ("repro_updates_processed_total", "repro_outputs_emitted_total")


def telemetry_spec(arrivals, fault_seed=None):
    return ExperimentSpec(
        workload_factory=STAR,
        arrivals=arrivals,
        engine=EngineSpec(kind="acaching"),
        output_mode="none",
        collect_obs=True,
        fault_spec=(
            FaultSpec(duplicate_prob=0.06, orphan_delete_prob=0.04)
            if fault_seed is not None
            else None
        ),
        fault_seed=fault_seed if fault_seed is not None else 0,
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_four_shard_merge_equals_serial_totals(seed):
    spec = telemetry_spec(400, fault_seed=seed)
    serial = run_sharded(spec, ParallelConfig(shards=1)).merged_telemetry()
    sharded = run_sharded(
        spec, ParallelConfig(shards=4, backend="serial")
    ).merged_telemetry()
    for name in TOTALS:
        assert sharded.registry.value(name) == serial.registry.value(name)
    dump = sharded.to_prometheus()
    for shard in range(4):
        assert f'shard="{shard}"' in dump
    assert sharded.shards == [0, 1, 2, 3]


def test_shard_labelled_series_sum_to_the_global_one():
    spec = telemetry_spec(600)
    run = run_sharded(spec, ParallelConfig(shards=4, backend="serial"))
    merged = run.merged_telemetry()
    for name in TOTALS:
        per_shard = [
            merged.registry.value(name, {"shard": str(shard)})
            for shard in range(4)
        ]
        assert None not in per_shard
        assert sum(per_shard) == merged.registry.value(name)
    # The registry agrees with the ShardStats the engine already merges.
    assert merged.registry.value("repro_updates_processed_total") == sum(
        result.stats.updates_processed for result in run.results
    )


def test_single_shard_runs_stay_unlabelled():
    spec = telemetry_spec(200)
    merged = run_sharded(spec, ParallelConfig(shards=1)).merged_telemetry()
    assert 'shard="' not in merged.to_prometheus()


def test_hit_rate_is_recomputed_from_global_sums_not_averaged():
    starved = TelemetrySnapshot(
        shard=0,
        gauges=[
            ("repro_cache_probes_total", (), 900.0),
            ("repro_cache_hits_total", (), 90.0),
            ("repro_cache_hit_rate", (), 0.1),
        ],
    )
    lucky = TelemetrySnapshot(
        shard=1,
        gauges=[
            ("repro_cache_probes_total", (), 100.0),
            ("repro_cache_hits_total", (), 90.0),
            ("repro_cache_hit_rate", (), 0.9),
        ],
    )
    merged = merge_telemetry([starved, lucky])
    # Averaging the per-shard ratios would claim 0.5; the truth is 0.18.
    assert merged.registry.value("repro_cache_hit_rate") == pytest.approx(
        180.0 / 1000.0
    )
    assert merged.registry.value(
        "repro_cache_probes_total", {"shard": "0"}
    ) == 900.0


def test_level_gauges_take_the_worst_shard_not_the_sum():
    low = TelemetrySnapshot(shard=0, gauges=[("repro_mem_bytes", (), 10.0)])
    high = TelemetrySnapshot(shard=1, gauges=[("repro_mem_bytes", (), 64.0)])
    merged = merge_telemetry([low, high])
    assert merged.registry.value("repro_mem_bytes") == 64.0


def test_histograms_merge_element_wise():
    base = {
        "name": "repro_op_us",
        "labels": (),
        "buckets": (10.0, 100.0),
        "counts": [1, 2],
        "inf_count": 1,
        "sum": 500.0,
        "count": 4,
    }
    merged = merge_telemetry([
        TelemetrySnapshot(shard=0, histograms=[dict(base)]),
        TelemetrySnapshot(
            shard=1,
            histograms=[
                dict(base, counts=[3, 0], inf_count=0, sum=20.0, count=3)
            ],
        ),
    ])
    histogram = merged.registry.histogram(
        "repro_op_us", buckets=(10.0, 100.0)
    )
    assert list(histogram.counts) == [4, 2]
    assert histogram.inf_count == 1
    assert histogram.count == 7
    assert histogram.sum == pytest.approx(520.0)


def test_events_gain_shard_keys_and_merge_chronologically():
    late = TelemetrySnapshot(shard=1, events=[{"t_us": 5.0, "kind": "x"}])
    early = TelemetrySnapshot(shard=0, events=[{"t_us": 2.0, "kind": "x"}])
    merged = merge_telemetry([late, early])
    assert [event["shard"] for event in merged.events] == [0, 1]
    assert [record["t_us"] for record in merged.chronology()] == [2.0, 5.0]


def test_prometheus_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", {"q": 'a"b\\c\nd'}).inc()
    dump = registry_to_prometheus(registry)
    assert r'q="a\"b\\c\nd"' in dump
