"""The replayable trace format: record once, replay byte-identically.

The format's reason to exist: a trace recorded from any workload must
replay the *exact* recorded update stream — rids, seqs, signs, row
identity — through every execution backend, so a chaos cell that fails
can be re-run anywhere without the generators' randomness in the loop.
"""

import json
from functools import partial

import pytest

from repro.errors import ScenarioError
from repro.faults.chaos import _chaos_config
from repro.api import EngineConfig
from repro.parallel.engine import (
    ParallelConfig,
    output_chronology,
    run_sharded,
)
from repro.parallel.spec import ExperimentSpec
from repro.scenarios import (
    TraceReplayer,
    build_named_scenario_workload,
    chronology_digest,
    load_trace_workload,
    record_trace,
)
from repro.streams.events import Sign

ARRIVALS = 600


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "flash.jsonl"
    workload = build_named_scenario_workload("flash_crowd", ARRIVALS)
    record_trace(workload, ARRIVALS, str(path))
    return str(path)


def test_replay_equals_the_recorded_stream(trace_path):
    recorded = list(
        build_named_scenario_workload("flash_crowd", ARRIVALS).updates(
            ARRIVALS
        )
    )
    replayed = list(load_trace_workload(trace_path).updates(ARRIVALS))
    assert len(replayed) == len(recorded)
    for ours, theirs in zip(replayed, recorded):
        assert ours.seq == theirs.seq
        assert ours.relation == theirs.relation
        assert ours.sign == theirs.sign
        assert ours.row.rid == theirs.row.rid
        assert ours.row.values == theirs.row.values


def test_replay_interns_rows_by_rid(trace_path):
    # Row equality is identity-based: a replayed delete must carry the
    # very object its insert introduced or windows would never match it.
    live = {}
    for update in load_trace_workload(trace_path).updates(ARRIVALS):
        if update.sign is Sign.INSERT:
            live[update.row.rid] = update.row
        else:
            assert update.row is live.pop(update.row.rid)


def test_replay_prefix_is_the_recorded_prefix(trace_path):
    # Replaying k < recorded arrivals yields the recorded stream's
    # k-arrival prefix — generator knobs that scale with the arrival
    # count are frozen at recording time; that is the point of a trace.
    full = list(load_trace_workload(trace_path).updates(ARRIVALS))
    half = list(load_trace_workload(trace_path).updates(ARRIVALS // 2))
    assert half == full[: len(half)]


def test_trace_digest_identical_across_backends(trace_path):
    # The acceptance property: one trace, byte-identical chronology
    # through serial, batched, and 4-shard execution.
    def digest(shards, batch_size):
        spec = ExperimentSpec(
            workload_factory=partial(load_trace_workload, trace_path),
            arrivals=ARRIVALS,
            engine=EngineConfig(
                tuning=_chaos_config(None)
            ).engine_spec("adaptive"),
            output_mode="deltas",
            batch_size=batch_size,
        )
        run = run_sharded(
            spec, ParallelConfig(shards=shards, backend="serial")
        )
        return chronology_digest(output_chronology(run))

    serial = digest(1, 1)
    assert digest(1, 8) == serial
    assert digest(4, 1) == serial


def test_replaying_more_than_recorded_is_rejected(trace_path):
    with pytest.raises(ScenarioError, match="cannot replay"):
        list(load_trace_workload(trace_path).updates(ARRIVALS + 1))


def test_checksum_rejects_a_tampered_trace(trace_path, tmp_path):
    lines = open(trace_path, encoding="utf-8").read().splitlines()
    event = json.loads(lines[1])
    event["values"] = [v + 1 for v in event["values"]]
    lines[1] = json.dumps(event, sort_keys=True)
    bad = tmp_path / "tampered.jsonl"
    bad.write_text("\n".join(lines) + "\n")
    with pytest.raises(ScenarioError, match="checksum"):
        TraceReplayer(str(bad))


def test_truncated_trace_is_rejected(trace_path, tmp_path):
    lines = open(trace_path, encoding="utf-8").read().splitlines()
    bad = tmp_path / "truncated.jsonl"
    bad.write_text("\n".join(lines[:-5]) + "\n")
    with pytest.raises(ScenarioError, match="truncated"):
        TraceReplayer(str(bad))


def test_wrong_kind_and_missing_file_are_rejected(tmp_path):
    with pytest.raises(ScenarioError, match="not found"):
        TraceReplayer(str(tmp_path / "nope.jsonl"))
    other = tmp_path / "other.jsonl"
    other.write_text(json.dumps({"kind": "something_else"}) + "\n")
    with pytest.raises(ScenarioError, match="not a repro_trace"):
        TraceReplayer(str(other))


def test_manifest_preserves_relation_declaration_order(trace_path):
    # JoinGraph reconstruction depends on schema order surviving the
    # JSON round-trip; sorted keys would silently reorder relations.
    workload = build_named_scenario_workload("flash_crowd", ARRIVALS)
    replayed = load_trace_workload(trace_path)
    assert list(replayed.graph.schemas) == list(workload.graph.schemas)
    assert replayed.windows == workload.windows
