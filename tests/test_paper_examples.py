"""The paper's worked Examples 3.1-3.5, executed verbatim.

Figure 2's sample data: ``R1 ⋈ R2 ⋈ R3`` with ``R1.A = R2.A`` and
``R2.B = R3.B``; R2 = {⟨1,2⟩, ⟨1,3⟩, ⟨2,3⟩}, R3 = {⟨2⟩, ⟨4⟩, ⟨6⟩};
Figure 2(a)'s pipelines (∆R1: R2,R3; ∆R2: R3,R1; ∆R3: R2,R1) make the
R2,R3 segment of ∆R1 a valid cache (Figure 3 / Example 3.4).
"""

import pytest

from repro.core.candidates import (
    enumerate_prefix_candidates,
    satisfies_prefix_invariant,
)
from repro.core.wiring import CacheWiring
from repro.mjoin.executor import MJoinExecutor
from repro.relations.predicates import JoinGraph
from repro.streams.events import Sign, Update
from repro.streams.tuples import RowFactory, Schema

ORDERS = {"R1": ("R2", "R3"), "R2": ("R3", "R1"), "R3": ("R2", "R1")}


def figure2_graph():
    return JoinGraph.parse(
        [
            Schema("R1", ("A",)),
            Schema("R2", ("A", "B")),
            Schema("R3", ("B",)),
        ],
        ["R1.A = R2.A", "R2.B = R3.B"],
    )


@pytest.fixture
def setup():
    executor = MJoinExecutor(figure2_graph(), orders=ORDERS)
    rows = RowFactory()
    for values in ((1, 2), (1, 3), (2, 3)):
        executor.relations["R2"].insert(rows.make(values))
    for values in ((2,), (4,), (6,)):
        executor.relations["R3"].insert(rows.make(values))
    return executor, rows


def values_of(delta):
    return tuple(
        delta.composite.row(rel).values
        for rel in sorted(delta.composite.relations())
    )


class TestExample31:
    def test_insertion_of_one_into_r1(self, setup):
        """⟨1⟩ joins R2 giving ⟨1,1,2⟩ and ⟨1,1,3⟩; only B=2 joins R3."""
        executor, rows = setup
        outputs = executor.process(
            Update("R1", rows.make((1,)), Sign.INSERT, 0)
        )
        assert [values_of(o) for o in outputs] == [((1,), (1, 2), (2,))]
        # And ⟨1⟩ is inserted into R1 afterwards.
        assert len(executor.relations["R1"]) == 1


class TestExamples32to35:
    def wire_cache(self, executor):
        candidates = enumerate_prefix_candidates(
            executor.graph, executor.orders()
        )
        (candidate,) = candidates  # exactly the R2,R3 segment in ∆R1
        assert candidate.owner == "R1"
        assert candidate.segment == ("R2", "R3")
        wiring = CacheWiring(executor)
        return wiring.attach(candidate)

    def test_example_34_prefix_invariant(self):
        """The R2,R3 segment of ∆R1 satisfies the invariant; the R2,R1
        segment of ∆R3 would not."""
        assert satisfies_prefix_invariant(frozenset({"R2", "R3"}), ORDERS)
        assert not satisfies_prefix_invariant(frozenset({"R1", "R2"}), ORDERS)

    def test_example_32_miss_then_hit(self, setup):
        executor, rows = setup
        wired = self.wire_cache(executor)
        first = executor.process(Update("R1", rows.make((1,)), Sign.INSERT, 0))
        assert [values_of(o) for o in first] == [((1,), (1, 2), (2,))]
        assert wired.cache.probes == 1 and wired.cache.hits == 0
        # The ⟨1,2,2⟩ segment tuple was cached; a second ⟨1⟩ hits.
        second = executor.process(
            Update("R1", rows.make((1,)), Sign.INSERT, 1)
        )
        assert [values_of(o) for o in second] == [((1,), (1, 2), (2,))]
        assert wired.cache.hits == 1

    def test_examples_33_and_35_maintenance(self, setup):
        """Inserting ⟨3⟩ into R3 updates the cached entry for key ⟨1⟩ via
        the intermediate tuple ⟨1,3,3⟩ and ignores ⟨2,3,3⟩ (key ⟨2⟩ not
        present); a new ⟨1⟩ then produces both output tuples."""
        executor, rows = setup
        wired = self.wire_cache(executor)
        executor.process(Update("R1", rows.make((1,)), Sign.INSERT, 0))
        assert wired.cache.entry_count == 1
        executor.process(Update("R3", rows.make((3,)), Sign.INSERT, 1))
        assert wired.cache.entry_count == 1  # ⟨2,3,3⟩'s insert was ignored
        outputs = executor.process(
            Update("R1", rows.make((1,)), Sign.INSERT, 2)
        )
        assert sorted(values_of(o) for o in outputs) == [
            ((1,), (1, 2), (2,)),
            ((1,), (1, 3), (3,)),
        ]
        assert wired.cache.hits == 1  # served entirely from the cache
