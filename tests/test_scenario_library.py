"""The declarative scenario library and its file/trace resolution."""

import json

import pytest

from repro.errors import ReproError, ScenarioError
from repro.faults.chaos import resolve_experiment
from repro.scenarios import (
    SCENARIOS,
    build_named_scenario_workload,
    compile_scenario_to_trace,
    load_trace_workload,
)
from repro.scenarios.library import (
    build_scenario_file_workload,
    build_scenario_workload,
    load_scenario,
    validate_scenario,
)
from repro.streams.events import Sign

EXPECTED = {
    "flash_crowd",
    "diurnal",
    "key_skew_churn",
    "delete_storm",
    "master_join",
}


def test_library_covers_the_paper_workload_shapes():
    assert set(SCENARIOS) == EXPECTED


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_every_builtin_scenario_builds_and_streams(name):
    # master_join spends its first 600 arrivals prefilling the master
    # relation, so it needs a longer stream to touch S and T.
    arrivals = 800 if name == "master_join" else 300
    workload = build_named_scenario_workload(name, arrivals)
    updates = list(workload.updates(arrivals))
    inserts = sum(1 for u in updates if u.sign is Sign.INSERT)
    assert inserts == arrivals
    # Every relation in the graph appears in the stream at this scale.
    assert {u.relation for u in updates} == set(workload.graph.schemas)


def test_flash_crowd_spikes_the_burst_relation():
    # The spike window multiplies R's rate 8x: R must dominate the
    # mid-stream segment far beyond its fair share.
    workload = build_named_scenario_workload("flash_crowd", 1000)
    inserts = [
        u.relation for u in workload.updates(1000) if u.sign is Sign.INSERT
    ]
    spike = inserts[400:600]
    assert spike.count("R") / len(spike) > 0.5


def test_master_join_prefills_the_master_relation():
    workload = build_named_scenario_workload("master_join", 800)
    inserts = [
        u.relation for u in workload.updates(800) if u.sign is Sign.INSERT
    ]
    head = inserts[:200]
    assert head.count("M") / len(head) > 0.9


def test_unknown_scenario_name_is_rejected():
    with pytest.raises(ScenarioError, match="nope"):
        build_named_scenario_workload("nope", 100)


def test_unknown_params_are_rejected():
    scenario = dict(SCENARIOS["flash_crowd"])
    scenario["params"] = {"bogus_knob": 3}
    with pytest.raises(ScenarioError, match="bogus_knob"):
        build_scenario_workload(scenario, 100)


def test_validate_scenario_rejects_malformed_documents():
    with pytest.raises(ScenarioError, match="mapping"):
        validate_scenario(["not", "a", "mapping"])
    with pytest.raises(ScenarioError, match="version"):
        validate_scenario({"version": 99, "name": "x", "kind": "diurnal"})
    bad_kind = dict(SCENARIOS["diurnal"], kind="tsunami")
    with pytest.raises(ScenarioError, match="tsunami"):
        validate_scenario(bad_kind)


def test_scenario_file_round_trips(tmp_path):
    scenario = dict(SCENARIOS["diurnal"])
    scenario["name"] = "my_diurnal"
    path = tmp_path / "sc.json"
    path.write_text(json.dumps(scenario))
    loaded = load_scenario(str(path))
    assert loaded["name"] == "my_diurnal"
    workload = build_scenario_file_workload(str(path), 200)
    assert sum(
        1 for u in workload.updates(200) if u.sign is Sign.INSERT
    ) == 200


def test_yaml_scenario_file_loads_when_yaml_is_available(tmp_path):
    yaml = pytest.importorskip("yaml")
    scenario = dict(SCENARIOS["flash_crowd"])
    scenario["name"] = "my_yaml_flash"
    path = tmp_path / "sc.yaml"
    path.write_text(yaml.safe_dump(scenario))
    assert load_scenario(str(path))["name"] == "my_yaml_flash"


def test_compiled_trace_matches_the_live_build(tmp_path):
    # scenario -> trace -> replay is the same stream as scenario -> live.
    path = tmp_path / "skew.jsonl"
    compile_scenario_to_trace(
        SCENARIOS["key_skew_churn"], str(path), arrivals=300
    )
    live = list(
        build_named_scenario_workload("key_skew_churn", 300).updates(300)
    )
    replayed = list(load_trace_workload(str(path)).updates(300))
    assert [
        (u.seq, u.relation, u.row.rid, u.row.values, u.sign)
        for u in replayed
    ] == [
        (u.seq, u.relation, u.row.rid, u.row.values, u.sign) for u in live
    ]


def test_resolve_experiment_understands_every_prefix(tmp_path):
    exp = resolve_experiment("scenario:delete_storm")
    assert exp.burst_stream == "R"
    assert exp.build(150) is not None

    scenario = dict(SCENARIOS["delete_storm"])
    path = tmp_path / "sc.json"
    path.write_text(json.dumps(scenario))
    assert resolve_experiment(f"scenario-file:{path}").build(150) is not None

    trace = tmp_path / "t.jsonl"
    compile_scenario_to_trace(scenario, str(trace), arrivals=150)
    via_trace = resolve_experiment(f"trace:{trace}")
    assert via_trace.arrivals == 150


def test_resolve_experiment_rejects_unknowns_with_a_hint():
    with pytest.raises(ReproError) as excinfo:
        resolve_experiment("definitely_not_a_thing")
    message = str(excinfo.value)
    assert "scenario:" in message  # the error teaches the prefixes
