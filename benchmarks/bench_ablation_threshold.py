"""Ablation: the re-optimization change threshold p (Section 4.5c).

The paper reports p = 20% as "very effective at reducing run-time
overhead without affecting adaptivity significantly". This ablation
sweeps p on the Figure 6 workload, recording throughput and the number of
offline selections actually run.
"""

from repro.api import EngineConfig, build_adaptive_engine
from repro.core.acaching import ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import fig6_workload


def run_with_threshold(p, arrivals):
    workload = fig6_workload(5, window=128)
    config = ACachingConfig(
        profiler=ProfilerConfig(
            window=4, profile_probability=0.05, bloom_window_tuples=64
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=1500,
            profiling_phase_updates=200,
            change_threshold=p,
        ),
        ordering=OrderingConfig(interval_updates=10**9),
    )
    engine = build_adaptive_engine(workload, EngineConfig(tuning=config))
    engine.run(workload.updates(arrivals))
    ctx = engine.ctx
    return {
        "throughput": ctx.metrics.throughput(ctx.clock.now_seconds),
        "reoptimizations": ctx.metrics.reoptimizations,
        "used": engine.used_caches(),
    }


def test_threshold_ablation(bench_scale, benchmark, reporter):
    arrivals = bench_scale(10_000)
    sweep = [0.0, 0.05, 0.2, 0.5, 1.0]
    results = {p: run_with_threshold(p, arrivals) for p in sweep}
    lines = [
        "Ablation — re-optimization change threshold p (Section 4.5c)",
        "=" * 60,
        f"{'p':>6} | {'tuples/sec':>12} | {'selections run':>14} | caches",
    ]
    for p, r in results.items():
        lines.append(
            f"{p:>6} | {r['throughput']:>12,.0f} | "
            f"{r['reoptimizations']:>14} | {r['used']}"
        )
    reporter("\n".join(lines))

    # A higher threshold must not increase the number of selections.
    assert (
        results[1.0]["reoptimizations"] <= results[0.0]["reoptimizations"]
    )
    # The paper's p=20% still finds and keeps the profitable cache.
    assert results[0.2]["used"], "p=0.2 should retain the R⋈S cache"
    # Adaptivity is not significantly affected: throughput within 10% of
    # the always-reoptimize configuration.
    assert (
        results[0.2]["throughput"] >= 0.9 * results[0.0]["throughput"]
    )

    benchmark.pedantic(
        lambda: run_with_threshold(0.2, 2000), rounds=2, iterations=1
    )
