"""Ablation: full vs incremental re-optimization (Section 8 extension).

The incremental re-optimizer (repro.core.incremental) replaces most
from-scratch selections with local add/drop/swap moves and widens the
thresholds of statistics that never change the outcome. This ablation
compares the two on the bursty Figure 12 workload, where adaptation
actually matters.
"""

from repro.api import EngineConfig, build_adaptive_engine
from repro.core.acaching import ACachingConfig
from repro.core.profiler import ProfilerConfig
from repro.core.reoptimizer import ReoptimizerConfig
from repro.ordering.agreedy import OrderingConfig
from repro.streams.workloads import fig12_workload


def run(incremental: bool, arrivals: int):
    workload = fig12_workload(
        burst_after_arrivals=arrivals // 2, window=96
    )
    config = ACachingConfig(
        profiler=ProfilerConfig(
            window=5, profile_probability=0.05, bloom_window_tuples=256
        ),
        reoptimizer=ReoptimizerConfig(
            reopt_interval_updates=3000,
            profiling_phase_updates=500,
            global_quota=6,
        ),
        ordering=OrderingConfig(interval_updates=1500),
        incremental_reoptimizer=incremental,
    )
    engine = build_adaptive_engine(workload, EngineConfig(tuning=config))
    engine.run(workload.updates(arrivals))
    ctx = engine.ctx
    result = {
        "throughput": ctx.metrics.throughput(ctx.clock.now_seconds),
        "selection_rounds": ctx.metrics.reoptimizations,
        "used": engine.used_caches(),
    }
    if incremental:
        result["incremental_rounds"] = engine.reoptimizer.incremental_rounds
        result["full_rounds"] = engine.reoptimizer.full_rounds
    return result


def test_incremental_ablation(bench_scale, benchmark, reporter):
    arrivals = bench_scale(30_000)
    baseline = run(incremental=False, arrivals=arrivals)
    incremental = run(incremental=True, arrivals=arrivals)
    reporter(
        "Ablation — full vs incremental re-optimization (bursty workload)\n"
        "=================================================================\n"
        f"{'variant':>12} | {'tuples/sec':>12} | {'rounds':>7} | caches\n"
        f"{'full':>12} | {baseline['throughput']:>12,.0f} | "
        f"{baseline['selection_rounds']:>7} | {baseline['used']}\n"
        f"{'incremental':>12} | {incremental['throughput']:>12,.0f} | "
        f"{incremental['selection_rounds']:>7} | {incremental['used']} "
        f"(local {incremental['incremental_rounds']}, "
        f"full {incremental['full_rounds']})"
    )
    # The extension must not cost meaningful throughput ...
    assert incremental["throughput"] >= 0.9 * baseline["throughput"]
    # ... and must still adapt to the burst (ends on some cache).
    assert incremental["used"], "incremental variant stopped adapting"

    benchmark.pedantic(
        lambda: run(incremental=True, arrivals=5000), rounds=1, iterations=1
    )
