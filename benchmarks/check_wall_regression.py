#!/usr/bin/env python
"""The wall-clock perf-regression gate (compares BENCH_wall.json runs).

    python benchmarks/check_wall_regression.py fresh.json \
        [--baseline BENCH_wall.json] [--warn-only]

Two checks, with deliberately different teeth:

* **Profiler overhead** (hard failure, never downgraded): the fresh
  run's measured disabled-profiler guard cost must stay within the
  baseline's committed ``disabled_overhead_max`` budget (3%). This is a
  property of the instrumentation code — guard-pair cost × crossing
  count over the run's wall time — so it is stable even on noisy
  shared runners.
* **Wall throughput drift** (``--warn-only`` downgrades to warnings):
  each mode's median wall seconds must stay within ``wall_rel_tol`` of
  the committed baseline. Shared CI runners routinely swing real wall
  time by tens of percent, so CI pins this to warn-only; run without
  the flag on quiet hardware to make drift a failure.

Exit status: 0 when every hard check passes (warnings allowed), 1
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("benchmark") != "wall":
        raise SystemExit(f"{path} is not a BENCH_wall.json payload")
    return payload


def check(fresh: dict, baseline: dict, warn_only: bool) -> int:
    tolerances = baseline.get("tolerances", {})
    overhead_max = tolerances.get("disabled_overhead_max", 0.03)
    wall_rel_tol = tolerances.get("wall_rel_tol", 0.60)
    errors: List[str] = []
    warnings: List[str] = []

    measured = fresh["overhead"]["disabled_overhead_fraction"]
    if measured > overhead_max:
        errors.append(
            f"disabled-profiler overhead {measured:.3%} exceeds the "
            f"{overhead_max:.0%} budget"
        )
    else:
        print(
            f"ok: disabled-profiler overhead {measured:.3%} "
            f"(budget {overhead_max:.0%})"
        )

    committed = {p["mode"]: p for p in baseline["points"]}
    for point in fresh["points"]:
        reference = committed.get(point["mode"])
        if reference is None:
            warnings.append(f"mode {point['mode']!r} not in the baseline")
            continue
        drift = (
            point["wall_seconds"] / reference["wall_seconds"] - 1.0
            if reference["wall_seconds"] > 0
            else 0.0
        )
        line = (
            f"{point['mode']}: {point['wall_seconds']:.3f}s vs committed "
            f"{reference['wall_seconds']:.3f}s ({drift:+.1%}, "
            f"tolerance ±{wall_rel_tol:.0%})"
        )
        if abs(drift) > wall_rel_tol:
            (warnings if warn_only else errors).append(line)
        else:
            print(f"ok: {line}")

    for line in warnings:
        print(f"warning: {line}")
    for line in errors:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if errors else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured bench --wall JSON")
    parser.add_argument(
        "--baseline", default="BENCH_wall.json",
        help="committed baseline to gate against (default BENCH_wall.json)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report wall-drift violations as warnings, not failures "
             "(the overhead budget still hard-fails)",
    )
    args = parser.parse_args(argv)
    return check(load(args.fresh), load(args.baseline), args.warn_only)


if __name__ == "__main__":
    sys.exit(main())
