"""Shared configuration for the figure-regeneration benchmarks.

Every module regenerates one of the paper's tables or figures at a
moderate scale (absolute numbers come from the virtual cost clock; see
DESIGN.md), prints the series, checks its headline shape, and times a
representative kernel with pytest-benchmark.
"""

import pytest

_REPORTS = []


@pytest.fixture
def reporter():
    """Collect experiment tables for the end-of-run summary.

    In-test prints are captured by pytest; the collected tables are
    emitted from ``pytest_terminal_summary`` (after capture ends) so the
    regenerated series land in ``bench_output.txt``.
    """

    def write(text: str) -> None:
        _REPORTS.append(text)

    return write


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_scale():
    """Arrival counts used across benchmark modules.

    Raise these for tighter series (e.g. BENCH_SCALE=2 doubles arrivals).
    """
    import os

    factor = float(os.environ.get("BENCH_SCALE", "1"))

    def scale(base: int) -> int:
        return max(500, int(base * factor))

    return scale
