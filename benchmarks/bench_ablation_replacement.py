"""Ablation: direct-mapped vs LRU cache replacement (Section 3.3).

The paper picks direct-mapped replacement for its low constant overhead
and leaves richer schemes as future work. This ablation runs the forced
R⋈S cache of Figure 6 with both stores, comparing hit rates and
replacement churn when the store is deliberately undersized.
"""

from repro.api import EngineConfig, build_static_plan
from repro.caching.store import LRUStore
from repro.streams.workloads import fig6_workload

CHAIN_ORDERS = {"T": ("S", "R"), "R": ("S", "T"), "S": ("R", "T")}


def run_with_store(store_factory, arrivals=8000, buckets=48):
    workload = fig6_workload(5, window=128)
    plan = build_static_plan(
        workload,
        EngineConfig(
            orders=CHAIN_ORDERS,
            candidate_ids=("T:0-1p",),
            buckets=buckets,
        ),
    )
    cache = plan.wiring.wired["T:0-1p"].cache
    if store_factory is not None:
        cache.store = store_factory(buckets)
    plan.run(workload.updates(arrivals))
    ctx = plan.ctx
    return {
        "throughput": ctx.metrics.throughput(ctx.clock.now_seconds),
        "hit_rate": ctx.metrics.hit_rate,
    }


def test_replacement_ablation(bench_scale, benchmark, reporter):
    arrivals = bench_scale(8000)
    direct = run_with_store(None, arrivals=arrivals)
    lru = run_with_store(LRUStore, arrivals=arrivals)
    reporter(
        "Ablation — cache replacement (undersized store, 48 entries)\n"
        "============================================================\n"
        f"{'scheme':>14} | {'tuples/sec':>12} | {'hit rate':>9}\n"
        f"{'direct-mapped':>14} | {direct['throughput']:>12,.0f} | "
        f"{direct['hit_rate']:>9.3f}\n"
        f"{'LRU':>14} | {lru['throughput']:>12,.0f} | "
        f"{lru['hit_rate']:>9.3f}"
    )
    # Both must deliver working caches; under size pressure LRU keeps the
    # hot working set at least as well as blind replacement.
    assert direct["hit_rate"] > 0.3
    assert lru["hit_rate"] >= direct["hit_rate"] - 0.05

    benchmark.pedantic(
        lambda: run_with_store(None, arrivals=2000), rounds=3, iterations=1
    )
