"""Figure 10: varying join cost (nested-loop join, no index on S.B).

Paper shape: with the S.B hash index dropped, the join with S in ∆T's
pipeline costs Θ(|S|), and the relative advantage of caching improves
significantly as |S| grows (time ratio falling toward ≈0.15).
"""

from repro.bench import figures
from repro.bench.harness import format_rows, monotone_non_increasing


def test_figure10_series(bench_scale, benchmark, reporter):
    rows = figures.figure10(
        s_windows=(50, 250, 500, 1000, 1500, 2000),
        arrivals=bench_scale(12_000),
    )
    reporter(
        format_rows(
            "Figure 10 — varying join cost (|S| window, nested loop)",
            "|S| window",
            rows,
            extra_keys=("hit_rate",),
        )
    )
    ratios = [row.ratio for row in rows]
    assert monotone_non_increasing(ratios, tolerance=0.15)
    assert ratios[-1] < 0.35, "large nested loops should strongly favor caching"

    benchmark.pedantic(
        lambda: figures.figure10(s_windows=(250,), arrivals=2000),
        rounds=3,
        iterations=1,
    )
