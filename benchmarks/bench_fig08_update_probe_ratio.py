"""Figure 8: varying the cache update rate over the probe rate.

Paper shape: caching degrades as the update/probe ratio grows, but the
cache's update cost is low relative to the work saved per hit, so caching
remains better even when updates outpace probes (ratio 4).
"""

from repro.bench import figures
from repro.bench.harness import format_rows


def test_figure8_series(bench_scale, benchmark, reporter):
    rows = figures.figure8(
        ratios=(0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
        arrivals=bench_scale(8000),
    )
    reporter(
        format_rows(
            "Figure 8 — varying update rate / probe rate",
            "update/probe",
            rows,
            extra_keys=("hit_rate",),
        )
    )
    # Shape: ratio worsens (rises) as the update share grows ...
    assert rows[-1].ratio > rows[0].ratio
    # ... but caching is still worthwhile past parity.
    assert all(row.ratio <= 1.05 for row in rows)

    benchmark.pedantic(
        lambda: figures.figure8(ratios=(1.0,), arrivals=2000),
        rounds=3,
        iterations=1,
    )
