"""Figure 7: varying join selectivity for ∆T tuples.

Paper shape: caching improves performance over the entire selectivity
range (ratio < 1 everywhere). The paper additionally observes the weakest
relative improvement near selectivity 1; under our cost constants the
hit-side savings dominate the miss-side update penalty throughout, so the
ratio falls monotonically — recorded as a known divergence in
EXPERIMENTS.md.
"""

from repro.bench import figures
from repro.bench.harness import format_rows


def test_figure7_series(bench_scale, benchmark, reporter):
    rows = figures.figure7(
        selectivities=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
        arrivals=bench_scale(8000),
    )
    reporter(
        format_rows(
            "Figure 7 — varying join selectivity",
            "T selectivity",
            rows,
            extra_keys=("hit_rate",),
        )
    )
    # Headline shape: caching wins across the whole range.
    assert all(row.ratio <= 1.0 for row in rows)
    # And decisively at high selectivity (each hit saves more work).
    assert rows[-1].ratio < 0.8

    benchmark.pedantic(
        lambda: figures.figure7(selectivities=(1.0,), arrivals=2000),
        rounds=3,
        iterations=1,
    )
