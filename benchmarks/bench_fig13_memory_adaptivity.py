"""Figure 13: adaptivity to the amount of memory available.

Paper shape: MJoins are insensitive to extra memory (no subresults);
XJoins are infeasible below their subresult footprint and flat above it;
A-Caching spans the space between, improving as the budget admits more
caches by priority (net benefit per byte, Section 5).
"""

from repro.bench import figures


def render(rows):
    lines = [
        "Figure 13 — adaptivity to memory availability (point D8)",
        "=" * 60,
        f"{'budget KB':>10} | {'MJoin':>9} | {'A-Caching':>10} | "
        f"{'cache mem KB':>12} | {'XJoin':>10}",
    ]
    for r in rows:
        xjoin = f"{r.xjoin_rate:,.0f}" if r.xjoin_rate else "infeasible"
        lines.append(
            f"{r.memory_kb:>10} | {r.mjoin_rate:>9,.0f} | "
            f"{r.acaching_rate:>10,.0f} | "
            f"{r.acaching_memory_bytes / 1024:>12.1f} | {xjoin:>10}"
        )
    return "\n".join(lines)


def test_figure13_memory_adaptivity(bench_scale, benchmark, reporter):
    rows = figures.figure13(
        budgets_kb=(0.5, 2, 8, 16, 32, 48, 64, 96, 128),
        arrivals=bench_scale(20_000),
    )
    reporter(render(rows))

    # MJoin is flat (it holds no subresults).
    mjoin_rates = {r.mjoin_rate for r in rows}
    assert len(mjoin_rates) == 1

    # XJoin is infeasible below its subresult footprint, then flat.
    assert rows[0].xjoin_rate is None
    feasible = [r.xjoin_rate for r in rows if r.xjoin_rate is not None]
    assert feasible, "the largest budgets must admit the XJoin"
    assert len(set(feasible)) == 1

    # A-Caching: never meaningfully below MJoin, and improving once the
    # budget admits its caches.
    assert all(r.acaching_rate > 0.93 * r.mjoin_rate for r in rows)
    assert rows[-1].acaching_rate > rows[0].acaching_rate
    assert rows[-1].acaching_memory_bytes > 0

    benchmark.pedantic(
        lambda: figures.figure13(budgets_kb=(64,), arrivals=3000),
        rounds=1,
        iterations=1,
    )
