"""Figure 12: adaptivity to a changing stream rate (20× burst on ∆R).

Paper shape: before the burst, the static plan T⋈(R⋈S) — an R⋈S cache in
∆T's pipeline — is best and the adaptive algorithm converges to it with
little overhead; once ∆R bursts, that plan collapses, the static
R⋈(T⋈S) plan (a globally-consistent (S⋈T)⋉R cache in ∆R's pipeline)
becomes the high performer, and the adaptive algorithm switches to it.
"""

from repro.bench import figures


def render(series):
    lines = [
        "Figure 12 — adaptivity to changing stream rate (burst on ∆R)",
        "=" * 62,
        f"{'∆S tuples':>10} | {'T⋈(R⋈S)':>10} | {'R⋈(T⋈S)':>10} | "
        f"{'adaptive':>10} | adaptive caches",
    ]
    for a, b, c in zip(
        series.static_rs_cache, series.static_ts_cache, series.adaptive
    ):
        lines.append(
            f"{c.x:>10} | {a.window_throughput:>10,.0f} | "
            f"{b.window_throughput:>10,.0f} | "
            f"{c.window_throughput:>10,.0f} | {list(c.used_caches)}"
        )
    return "\n".join(lines)


def test_figure12_burst_adaptivity(bench_scale, benchmark, reporter):
    series = figures.figure12(
        total_arrivals=bench_scale(44_000),
        burst_after_arrivals=bench_scale(22_000),
        sample_every_updates=bench_scale(4_000),
    )
    reporter(render(series))

    half = len(series.adaptive) // 2
    pre = slice(1, half - 1)     # skip the cold-start sample
    post = slice(half + 1, None) # skip the transition sample

    def mean(points):
        return sum(p.window_throughput for p in points) / max(1, len(points))

    rs_pre = mean(series.static_rs_cache[pre])
    rs_post = mean(series.static_rs_cache[post])
    ts_pre = mean(series.static_ts_cache[pre])
    ts_post = mean(series.static_ts_cache[post])
    ad_pre = mean(series.adaptive[pre])
    ad_post = mean(series.adaptive[post])

    # Pre-burst: T⋈(R⋈S) is the better static plan; the burst flips it.
    assert rs_pre > ts_pre
    assert ts_post > rs_post
    # The burst hurts the T⋈(R⋈S) plan badly.
    assert rs_post < 0.7 * rs_pre
    # Adaptive tracks the better static plan within modest overhead on
    # both sides of the burst.
    assert ad_pre > 0.8 * rs_pre
    assert ad_post > 0.8 * ts_post
    # And it ends up on the globally-consistent (S⋈T)⋉R cache.
    final_caches = series.adaptive[-1].used_caches
    assert any(cid.endswith("g") for cid in final_caches)

    benchmark.pedantic(
        lambda: figures.figure12(
            total_arrivals=6000,
            burst_after_arrivals=3000,
            sample_every_updates=2000,
        ),
        rounds=1,
        iterations=1,
    )
