"""Figure 6: varying cache hit probability (multiplicity of T.B).

Paper shape: the caching/MJoin time ratio falls monotonically as the
multiplicity of T.B grows (≈1.05 at multiplicity 1 down to ≈0.45 at 10),
and caching wins even at multiplicity 1 because sliding-window deletions
re-probe each value once.
"""

from repro.bench import figures
from repro.bench.harness import format_rows, monotone_non_increasing


def test_figure6_series(bench_scale, benchmark, reporter):
    rows = figures.figure6(
        multiplicities=tuple(range(1, 11)), arrivals=bench_scale(8000)
    )
    reporter(
        format_rows(
            "Figure 6 — varying cache hit probability",
            "T.B multiplicity",
            rows,
            extra_keys=("hit_rate",),
        )
    )
    ratios = [row.ratio for row in rows]
    # Shape 1: ratio trends down as multiplicity grows.
    assert monotone_non_increasing(ratios, tolerance=0.10)
    assert ratios[-1] < 0.8, "high multiplicity should clearly favor caching"
    # Shape 2: caching is not worse than MJoin even at multiplicity 1.
    assert ratios[0] <= 1.05
    # Hit probability tracks multiplicity.
    assert rows[-1].extra["hit_rate"] > rows[0].extra["hit_rate"]

    # Timed kernel: one mid-curve point at reduced scale.
    benchmark.pedantic(
        lambda: figures.figure6(multiplicities=(5,), arrivals=2000),
        rounds=3,
        iterations=1,
    )
