"""Figure 9: varying the number of joining relations (n-way star).

Paper shape: the caching advantage is maintained across n = 3..9, with
multiple caches chosen from the candidate set as n grows (the paper's
7-way join used 6 of 15 candidates).
"""

from repro.bench import figures
from repro.bench.harness import format_rows


def test_figure9_series(bench_scale, benchmark, reporter):
    rows = figures.figure9(
        relation_counts=tuple(range(3, 10)),
        arrivals_for=lambda n: bench_scale(max(2500, 10_000 // max(1, n - 2))),
    )
    reporter(
        format_rows(
            "Figure 9 — varying number of joining relations",
            "n relations",
            rows,
            extra_keys=("caches_used",),
        )
    )
    # Shape: caching at least matches MJoin across the range and wins
    # clearly somewhere.
    assert all(row.ratio <= 1.1 for row in rows)
    assert min(row.ratio for row in rows) < 0.95
    # Larger joins offer more candidates; some runs should use several.
    assert max(row.extra["caches_used"] for row in rows) >= 2

    benchmark.pedantic(
        lambda: figures.figure9(
            relation_counts=(4,), arrivals_for=lambda n: 2000
        ),
        rounds=2,
        iterations=1,
    )
