"""Table 2 + Figure 11: the plan spectrum M / X / P / G at D1-D8.

Paper trends (Section 7.3):
1. X, P, and G almost always outperform M;
2. P usually significantly outperforms M;
3. there are points where X significantly outperforms P (prefix-invariant
   restriction bites), alleviated by globally-consistent caches;
4. G can outperform X by caching more subresults than any tree plan.
"""

from repro.bench import figures


def render(results):
    lines = [
        "Figure 11 — performance of stream-join plans (Table 2 points)",
        "=" * 62,
        f"{'point':>6} | {'M (MJoin)':>11} | {'X (XJoin)':>11} | "
        f"{'P (prefix)':>11} | {'G (global)':>11}",
    ]
    for r in results:
        lines.append(
            f"{r.point:>6} | {r.rates['M']:>11,.0f} | {r.rates['X']:>11,.0f}"
            f" | {r.rates['P']:>11,.0f} | {r.rates['G']:>11,.0f}"
        )
        lines.append(
            f"{'':>6}   P uses {r.detail['P_caches']}; "
            f"G uses {r.detail['G_caches']}; X tree {r.detail['xjoin_tree']}"
        )
    return "\n".join(lines)


def test_table2_parameters(reporter, benchmark):
    reporter(figures.table2())
    benchmark.pedantic(figures.table2, rounds=5, iterations=1)


def test_figure11_plan_spectrum(bench_scale, benchmark, reporter):
    results = figures.figure11(arrivals=bench_scale(16_000))
    reporter(render(results))
    rates = {r.point: r.rates for r in results}

    # Trend 1/2: caching-based plans beat the MJoin on most points, and
    # decisively on several.
    p_wins = [p for p in rates if rates[p]["P"] > rates[p]["M"]]
    assert len(p_wins) >= 5, f"P beat M only at {p_wins}"
    big_wins = [
        p for p in rates if rates[p]["P"] > 1.15 * rates[p]["M"]
    ]
    assert len(big_wins) >= 3

    # Trend 1: X almost always outperforms M.
    x_wins = [p for p in rates if rates[p]["X"] > rates[p]["M"]]
    assert len(x_wins) >= 6

    # Trend 4: somewhere, a caching plan beats the best XJoin (the plan
    # spectrum between MJoins and XJoins pays off).
    assert any(
        max(rates[p]["P"], rates[p]["G"]) > rates[p]["X"] for p in rates
    )

    benchmark.pedantic(
        lambda: figures.figure11(points=("D2",), arrivals=3000),
        rounds=1,
        iterations=1,
    )
