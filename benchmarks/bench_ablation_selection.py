"""Ablation: offline selection algorithms (Section 4.4 / Appendix B).

Compares the exact branch-and-bound, the greedy O(log n) approximation,
and randomized LP rounding on the Figure 5 candidate structure with
randomized statistics: solution quality (net benefit vs optimal) and
wall-clock cost of the solver itself.
"""

import random
import statistics
import time

from repro.core.candidates import enumerate_prefix_candidates
from repro.core.exhaustive import select_exhaustive
from repro.core.greedy import select_greedy
from repro.core.lp_rounding import select_lp_rounding
from repro.core.selection import SelectionProblem
from repro.streams.workloads import star_graph

FIGURE5_ORDERS = {
    "R1": ("R2", "R3", "R4", "R5", "R6"),
    "R2": ("R1", "R3", "R5", "R4", "R6"),
    "R3": ("R2", "R1", "R4", "R5", "R6"),
    "R4": ("R5", "R1", "R2", "R3", "R6"),
    "R5": ("R4", "R2", "R3", "R1", "R6"),
    "R6": ("R2", "R1", "R4", "R5", "R3"),
}


def make_problem(seed):
    rng = random.Random(seed)
    graph = star_graph(6)
    candidates = enumerate_prefix_candidates(graph, FIGURE5_ORDERS)
    operator_cost = {
        (owner, slot): rng.uniform(1, 30)
        for owner, order in FIGURE5_ORDERS.items()
        for slot in range(len(order))
    }
    benefit, proc = {}, {}
    for c in candidates:
        work = sum(operator_cost[s] for s in c.covered_slots)
        p = rng.uniform(0.1, 1.2) * work
        proc[c.candidate_id] = p
        benefit[c.candidate_id] = work - p
    group_cost = {}
    for c in candidates:
        group_cost.setdefault(c.share_token, rng.uniform(0, 40))
    return SelectionProblem(
        candidates=candidates,
        benefit=benefit,
        proc=proc,
        group_cost=group_cost,
        operator_cost=operator_cost,
    )


def evaluate(solver, instances):
    values, times = [], []
    for problem in instances:
        start = time.perf_counter()
        selected = solver(problem)
        times.append(time.perf_counter() - start)
        values.append(problem.subset_value(selected))
    return values, sum(times) / len(times)


def test_selection_ablation(benchmark, reporter):
    instances = [make_problem(seed) for seed in range(30)]
    exact_values, exact_time = evaluate(select_exhaustive, instances)
    greedy_values, greedy_time = evaluate(select_greedy, instances)
    lp_values, lp_time = evaluate(
        lambda p: select_lp_rounding(p, seed=0), instances
    )

    def quality(values):
        shares = [
            v / e if e > 0 else 1.0 for v, e in zip(values, exact_values)
        ]
        return statistics.mean(shares)

    reporter(
        "Ablation — offline selection algorithms (30 random instances)\n"
        "==============================================================\n"
        f"{'algorithm':>12} | {'mean net/optimal':>16} | {'mean solve ms':>14}\n"
        f"{'exhaustive':>12} | {1.0:>16.3f} | {exact_time * 1e3:>14.3f}\n"
        f"{'greedy':>12} | {quality(greedy_values):>16.3f} | "
        f"{greedy_time * 1e3:>14.3f}\n"
        f"{'LP rounding':>12} | {quality(lp_values):>16.3f} | "
        f"{lp_time * 1e3:>14.3f}"
    )
    assert quality(greedy_values) >= 0.5
    assert quality(lp_values) >= 0.5

    benchmark.pedantic(
        lambda: select_greedy(instances[0]), rounds=10, iterations=1
    )
