#!/usr/bin/env python
"""The shard-adaptivity gate (checks a BENCH_parallel.json run).

    python benchmarks/check_shard_adaptivity.py fresh.json

Guards the global adaptivity plane against the regression that
motivated it — sharded runs silently losing adaptivity (the ROADMAP's
"sharded hit_rate reads 0.0" blind spot). Hard failures:

* any sharded point (shards > 1) with a zero cache hit rate, an empty
  ``used_caches`` list, or ``coordinated`` false — a sharded run that
  never selected a cache means the coordinator plane is dead, not that
  the workload changed;
* a sharded point whose hit rate trails the serial point by more than
  ``--hit-rate-slack`` (default 0.15) — per-shard profiles merge with
  summed rates, so coordinated selection should roughly match serial
  selection, not lag it;
* a missing or failing ``resharding`` block: the mid-run rescale must
  report ``outputs_identical`` and ``windows_identical`` both true.

Exit status: 0 when every check passes, 1 otherwise. Throughput is
deliberately NOT gated here — ``check_wall_regression.py`` owns wall
numbers; this gate owns adaptivity correctness, which is stable even
on noisy shared runners.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != "parallel_bench":
        raise SystemExit(f"{path} is not a BENCH_parallel.json payload")
    return payload


def check(payload: dict, hit_rate_slack: float) -> int:
    errors: List[str] = []
    points = payload.get("points", [])
    serial = next((p for p in points if p["shards"] == 1), None)
    sharded = [p for p in points if p["shards"] > 1]
    if not sharded:
        errors.append("no sharded point in the payload — nothing to gate")

    for point in sharded:
        shards = point["shards"]
        if not point.get("coordinated", False):
            errors.append(
                f"{shards}-shard point ran uncoordinated — the "
                "adaptivity plane never pushed a plan"
            )
        if point["hit_rate"] <= 0.0:
            errors.append(
                f"{shards}-shard hit rate is {point['hit_rate']} — "
                "shards are not using caches"
            )
        if not point["used_caches"]:
            errors.append(
                f"{shards}-shard used_caches is empty — the coordinator "
                "selected nothing"
            )
        if serial is not None and serial["hit_rate"] > 0:
            gap = serial["hit_rate"] - point["hit_rate"]
            line = (
                f"{shards}-shard hit rate {point['hit_rate']:.3f} vs "
                f"serial {serial['hit_rate']:.3f} "
                f"(gap {gap:+.3f}, slack {hit_rate_slack})"
            )
            if gap > hit_rate_slack:
                errors.append(line)
            else:
                print(f"ok: {line}")

    demo = payload.get("resharding")
    if demo is None:
        errors.append("no resharding block — the rescale demo never ran")
    else:
        if not demo["outputs_identical"]:
            errors.append(
                f"rescale {demo['from_shards']}->{demo['to_shards']} at "
                f"update {demo['boundary_updates']} changed the output "
                "chronology"
            )
        if not demo["windows_identical"]:
            errors.append(
                f"rescale {demo['from_shards']}->{demo['to_shards']} "
                "left different final windows than the fixed-shard run"
            )
        if not errors:
            print(
                f"ok: reshard {demo['from_shards']}->{demo['to_shards']} "
                f"at update {demo['boundary_updates']} is identical "
                f"(hit rate {demo['pre_hit_rate']:.2f} -> "
                f"{demo['post_hit_rate']:.2f}, advice "
                f"{demo['advice_action']})"
            )

    for line in errors:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if errors else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument(
        "--hit-rate-slack", type=float, default=0.15,
        help="max allowed serial-minus-sharded hit-rate gap "
             "(default 0.15)",
    )
    args = parser.parse_args(argv)
    return check(load(args.fresh), args.hit_rate_slack)


if __name__ == "__main__":
    sys.exit(main())
