#!/usr/bin/env python
"""The chaos-matrix gate (checks a CHAOS_matrix.json campaign).

    python benchmarks/check_chaos_matrix.py fresh.json
    python benchmarks/check_chaos_matrix.py fresh.json --baseline CHAOS_matrix.json

Guards the cross-layer invariants the chaos campaign exists to pin:

* every cell carries a known verdict (PASS/FAIL/SKIPPED/RECOVERED) —
  a missing or unknown verdict means the sweep silently dropped a cell;
* no cell reports FAIL;
* every non-skipped, non-crash cell reports ``byte_identical``,
  ``zero_acked_loss``, and ``dead_letter_conservation`` all true —
  each execution mode must reproduce the serial run of the same
  (scenario, fault plan) pair exactly, shed nothing, and quarantine
  every injected corrupt/orphan event;
* every crash-plan cell that ran (serial and supervised modes) is
  RECOVERED with ``recovery_convergence`` true;
* skipped cells must say why (non-empty ``detail``);
* with ``--baseline``, every (scenario, plan, mode) cell present in
  BOTH campaigns must not report a worse verdict in the fresh run, and
  the two campaigns must overlap at all — CI runs a reduced slice
  against the full committed matrix, so the fresh run may cover fewer
  cells, never a disjoint set. Verdicts are compared, not digests —
  digests legitimately move when engine tuning changes, verdicts only
  move when an invariant breaks.

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

KNOWN_VERDICTS = ("PASS", "FAIL", "SKIPPED", "RECOVERED")
REQUIRED_INVARIANTS = (
    "byte_identical",
    "zero_acked_loss",
    "dead_letter_conservation",
)
#: Lower is worse; a fresh verdict must not rank below its baseline.
VERDICT_RANK = {"FAIL": 0, "SKIPPED": 1, "RECOVERED": 2, "PASS": 2}


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != "chaos_matrix":
        raise SystemExit(f"{path} is not a CHAOS_matrix.json payload")
    return payload


def _key(cell: dict) -> Tuple[str, str, str]:
    return (cell.get("scenario"), cell.get("plan"), cell.get("mode"))


def check(payload: dict, baseline: dict = None) -> int:
    errors: List[str] = []
    cells = payload.get("cells", [])
    if not cells:
        errors.append("the payload holds no cells — nothing was swept")

    for cell in cells:
        label = "{}/{}/{}".format(*_key(cell))
        verdict = cell.get("verdict")
        if verdict not in KNOWN_VERDICTS:
            errors.append(f"{label}: unknown verdict {verdict!r}")
            continue
        if verdict == "FAIL":
            broken = [
                name
                for name, ok in cell.get("invariants", {}).items()
                if not ok
            ]
            errors.append(
                f"{label}: FAIL (broken invariants: {broken or 'none listed'})"
            )
            continue
        if verdict == "SKIPPED":
            if not cell.get("detail"):
                errors.append(f"{label}: skipped without a reason")
            continue
        invariants = cell.get("invariants", {})
        if cell.get("plan") == "crash":
            if verdict != "RECOVERED":
                errors.append(
                    f"{label}: crash cell ended {verdict}, not RECOVERED"
                )
            if not invariants.get("recovery_convergence", False):
                errors.append(
                    f"{label}: crash cell did not converge to the clean "
                    "answer"
                )
            continue
        for name in REQUIRED_INVARIANTS:
            if not invariants.get(name, False):
                errors.append(f"{label}: invariant {name} is false")

    totals = payload.get("totals", {})
    if totals.get("cells") != len(cells):
        errors.append(
            f"totals.cells says {totals.get('cells')} but the payload "
            f"holds {len(cells)} cells"
        )

    if baseline is not None:
        fresh: Dict[Tuple[str, str, str], str] = {
            _key(c): c.get("verdict") for c in cells
        }
        compared = 0
        for cell in baseline.get("cells", []):
            key = _key(cell)
            if key not in fresh:
                # CI smoke runs a reduced slice against the full
                # committed matrix; only shared cells are comparable.
                continue
            compared += 1
            label = "{}/{}/{}".format(*key)
            base_verdict = cell.get("verdict")
            fresh_rank = VERDICT_RANK.get(fresh[key], -1)
            base_rank = VERDICT_RANK.get(base_verdict, -1)
            if fresh_rank < base_rank:
                errors.append(
                    f"{label}: regressed from {base_verdict} to "
                    f"{fresh[key]}"
                )
        if compared == 0:
            errors.append(
                "the fresh campaign shares no (scenario, plan, mode) "
                "cells with the baseline — nothing was compared"
            )
        else:
            print(f"ok: {compared} cells compared against the baseline")

    if not errors:
        print(
            "ok: {cells} cells — {p} pass, {r} recovered, "
            "{s} skipped, {f} failed".format(
                cells=totals.get("cells", len(cells)),
                p=totals.get("pass", "?"),
                r=totals.get("recovered", "?"),
                s=totals.get("skipped", "?"),
                f=totals.get("fail", "?"),
            )
        )
    for line in errors:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if errors else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured chaos matrix JSON")
    parser.add_argument(
        "--baseline",
        help="committed CHAOS_matrix.json to compare verdicts against",
    )
    args = parser.parse_args(argv)
    baseline = load(args.baseline) if args.baseline else None
    return check(load(args.fresh), baseline)


if __name__ == "__main__":
    sys.exit(main())
