"""Setuptools shim so `pip install -e .` works without the wheel package
(this sandbox is offline and has no bdist_wheel); all real metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
